//! A subset of the SCSI block command set, as carried by iSCSI.
//!
//! iSCSI is "SCSI over TCP": the initiator wraps SCSI *command
//! descriptor blocks* (CDBs) in PDUs. This crate provides the CDBs the
//! testbed needs — READ(10), WRITE(10), READ CAPACITY(10), INQUIRY,
//! SYNCHRONIZE CACHE(10), TEST UNIT READY — with real wire encoding
//! and decoding, plus a [`ScsiTarget`] that executes commands against
//! a [`BlockDevice`].
//!
//! # Example
//!
//! ```
//! use scsi::Cdb;
//!
//! let cdb = Cdb::Read10 { lba: 0x1234, blocks: 8 };
//! let bytes = cdb.encode();
//! assert_eq!(Cdb::decode(&bytes).unwrap(), cdb);
//! ```

use blockdev::{BlockDevice, IoCost, BLOCK_SIZE};
use std::fmt;
use std::rc::Rc;

/// SCSI operation codes used by the testbed.
pub mod opcodes {
    /// TEST UNIT READY (6-byte CDB).
    pub const TEST_UNIT_READY: u8 = 0x00;
    /// INQUIRY (6-byte CDB).
    pub const INQUIRY: u8 = 0x12;
    /// READ CAPACITY (10) (10-byte CDB).
    pub const READ_CAPACITY_10: u8 = 0x25;
    /// READ (10) (10-byte CDB).
    pub const READ_10: u8 = 0x28;
    /// WRITE (10) (10-byte CDB).
    pub const WRITE_10: u8 = 0x2A;
    /// SYNCHRONIZE CACHE (10) (10-byte CDB).
    pub const SYNCHRONIZE_CACHE_10: u8 = 0x35;
    /// MODE SENSE (6) (6-byte CDB).
    pub const MODE_SENSE_6: u8 = 0x1A;
    /// REPORT LUNS (12-byte CDB).
    pub const REPORT_LUNS: u8 = 0xA0;
}

/// A decoded command descriptor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cdb {
    /// Read `blocks` logical blocks starting at `lba`.
    Read10 {
        /// First logical block address.
        lba: u32,
        /// Transfer length in blocks.
        blocks: u16,
    },
    /// Write `blocks` logical blocks starting at `lba`.
    Write10 {
        /// First logical block address.
        lba: u32,
        /// Transfer length in blocks.
        blocks: u16,
    },
    /// Query capacity: returns last LBA + block size.
    ReadCapacity10,
    /// Device identification.
    Inquiry,
    /// Flush the device write cache for the given range (0 = all).
    SynchronizeCache10 {
        /// First logical block address.
        lba: u32,
        /// Number of blocks (0 means whole device).
        blocks: u16,
    },
    /// Readiness probe.
    TestUnitReady,
    /// Mode pages (caching parameters etc.).
    ModeSense6 {
        /// Requested page code (0x08 = caching, 0x3F = all).
        page: u8,
    },
    /// LUN inventory.
    ReportLuns,
}

/// CDB decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdbError {
    /// Opcode not implemented by this target.
    UnsupportedOpcode(u8),
    /// Byte slice too short for the opcode's CDB length.
    Truncated {
        /// Opcode observed.
        opcode: u8,
        /// Bytes available.
        len: usize,
    },
}

impl fmt::Display for CdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdbError::UnsupportedOpcode(op) => write!(f, "unsupported SCSI opcode {op:#04x}"),
            CdbError::Truncated { opcode, len } => {
                write!(f, "truncated CDB for opcode {opcode:#04x} ({len} bytes)")
            }
        }
    }
}

impl std::error::Error for CdbError {}

impl Cdb {
    /// Encodes to SCSI wire format (6- or 10-byte CDB).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            Cdb::Read10 { lba, blocks } => encode_rw10(opcodes::READ_10, lba, blocks),
            Cdb::Write10 { lba, blocks } => encode_rw10(opcodes::WRITE_10, lba, blocks),
            Cdb::ReadCapacity10 => {
                let mut b = vec![0u8; 10];
                b[0] = opcodes::READ_CAPACITY_10;
                b
            }
            Cdb::Inquiry => {
                let mut b = vec![0u8; 6];
                b[0] = opcodes::INQUIRY;
                b[4] = 36; // standard inquiry data length
                b
            }
            Cdb::SynchronizeCache10 { lba, blocks } => {
                encode_rw10(opcodes::SYNCHRONIZE_CACHE_10, lba, blocks)
            }
            Cdb::TestUnitReady => vec![0u8; 6],
            Cdb::ModeSense6 { page } => {
                let mut b = vec![0u8; 6];
                b[0] = opcodes::MODE_SENSE_6;
                b[2] = page;
                b[4] = 64; // allocation length
                b
            }
            Cdb::ReportLuns => {
                let mut b = vec![0u8; 12];
                b[0] = opcodes::REPORT_LUNS;
                b[9] = 16; // allocation length (one LUN entry + header)
                b
            }
        }
    }

    /// Decodes from SCSI wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CdbError`] on unknown opcodes or short buffers.
    pub fn decode(bytes: &[u8]) -> Result<Cdb, CdbError> {
        let opcode = *bytes
            .first()
            .ok_or(CdbError::Truncated { opcode: 0, len: 0 })?;
        let need = match opcode {
            opcodes::TEST_UNIT_READY | opcodes::INQUIRY | opcodes::MODE_SENSE_6 => 6,
            opcodes::READ_10
            | opcodes::WRITE_10
            | opcodes::READ_CAPACITY_10
            | opcodes::SYNCHRONIZE_CACHE_10 => 10,
            opcodes::REPORT_LUNS => 12,
            other => return Err(CdbError::UnsupportedOpcode(other)),
        };
        if bytes.len() < need {
            return Err(CdbError::Truncated {
                opcode,
                len: bytes.len(),
            });
        }
        Ok(match opcode {
            opcodes::TEST_UNIT_READY => Cdb::TestUnitReady,
            opcodes::INQUIRY => Cdb::Inquiry,
            opcodes::READ_CAPACITY_10 => Cdb::ReadCapacity10,
            opcodes::READ_10 => {
                let (lba, blocks) = decode_rw10(bytes);
                Cdb::Read10 { lba, blocks }
            }
            opcodes::WRITE_10 => {
                let (lba, blocks) = decode_rw10(bytes);
                Cdb::Write10 { lba, blocks }
            }
            opcodes::SYNCHRONIZE_CACHE_10 => {
                let (lba, blocks) = decode_rw10(bytes);
                Cdb::SynchronizeCache10 { lba, blocks }
            }
            opcodes::MODE_SENSE_6 => Cdb::ModeSense6 { page: bytes[2] },
            opcodes::REPORT_LUNS => Cdb::ReportLuns,
            _ => unreachable!(),
        })
    }

    /// Bytes the initiator must ship to the target with this command
    /// (data-out phase).
    pub fn data_out_len(&self) -> usize {
        match *self {
            Cdb::Write10 { blocks, .. } => blocks as usize * BLOCK_SIZE,
            _ => 0,
        }
    }

    /// Bytes the target returns in the data-in phase.
    pub fn data_in_len(&self) -> usize {
        match *self {
            Cdb::Read10 { blocks, .. } => blocks as usize * BLOCK_SIZE,
            Cdb::ReadCapacity10 => 8,
            Cdb::Inquiry => 36,
            Cdb::ModeSense6 { .. } => 24,
            Cdb::ReportLuns => 16,
            _ => 0,
        }
    }
}

fn encode_rw10(opcode: u8, lba: u32, blocks: u16) -> Vec<u8> {
    let mut b = vec![0u8; 10];
    b[0] = opcode;
    b[2..6].copy_from_slice(&lba.to_be_bytes());
    b[7..9].copy_from_slice(&blocks.to_be_bytes());
    b
}

fn decode_rw10(bytes: &[u8]) -> (u32, u16) {
    let lba = u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
    let blocks = u16::from_be_bytes([bytes[7], bytes[8]]);
    (lba, blocks)
}

/// SCSI sense keys reported on CHECK CONDITION.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenseKey {
    /// CDB or LBA out of range / malformed.
    IllegalRequest,
    /// Unrecoverable media error (e.g. double disk failure).
    MediumError,
    /// Device not ready.
    NotReady,
}

/// Command completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScsiStatus {
    /// Command succeeded.
    Good,
    /// Command failed with the given sense key.
    CheckCondition(SenseKey),
}

/// Result of executing a command at the target.
#[derive(Debug, Clone)]
pub struct ScsiCompletion {
    /// Completion status.
    pub status: ScsiStatus,
    /// Data-in payload (reads, capacity, inquiry).
    pub data: Vec<u8>,
    /// Device service time for the command.
    pub cost: IoCost,
}

/// Server-side SCSI command executor over a block device — the "SCSI
/// server layer" in the paper's description of the iSCSI processing
/// path.
pub struct ScsiTarget {
    device: Rc<dyn BlockDevice>,
}

impl fmt::Debug for ScsiTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScsiTarget")
            .field("device", &self.device.name())
            .finish()
    }
}

impl ScsiTarget {
    /// Creates a target backed by `device`.
    pub fn new(device: Rc<dyn BlockDevice>) -> Self {
        ScsiTarget { device }
    }

    /// The backing device.
    pub fn device(&self) -> &Rc<dyn BlockDevice> {
        &self.device
    }

    /// Executes a `Read10` directly into `buf`, avoiding the
    /// per-command data-in allocation of [`execute`](ScsiTarget::execute).
    /// `buf` must hold exactly `blocks * BLOCK_SIZE` bytes; on success
    /// the payload is in `buf` and the returned completion carries no
    /// owned data.
    pub fn execute_read_into(&self, lba: u32, blocks: u16, buf: &mut [u8]) -> ScsiCompletion {
        debug_assert_eq!(buf.len(), blocks as usize * BLOCK_SIZE);
        match self.device.read(lba as u64, blocks as u32, buf) {
            Ok(cost) => ScsiCompletion {
                status: ScsiStatus::Good,
                data: Vec::new(),
                cost,
            },
            Err(e) => self.fail(e),
        }
    }

    /// Executes one command. `data_out` must hold exactly
    /// [`Cdb::data_out_len`] bytes.
    pub fn execute(&self, cdb: Cdb, data_out: &[u8]) -> ScsiCompletion {
        match cdb {
            Cdb::TestUnitReady => ScsiCompletion {
                status: ScsiStatus::Good,
                data: Vec::new(),
                cost: IoCost::FREE,
            },
            Cdb::Inquiry => {
                let mut data = vec![0u8; 36];
                data[0] = 0x00; // direct-access block device
                data[8..16].copy_from_slice(b"IPSTORE ");
                ScsiCompletion {
                    status: ScsiStatus::Good,
                    data,
                    cost: IoCost::FREE,
                }
            }
            Cdb::ReadCapacity10 => {
                let last = self.device.block_count().saturating_sub(1);
                let mut data = Vec::with_capacity(8);
                data.extend_from_slice(&(last.min(u32::MAX as u64) as u32).to_be_bytes());
                data.extend_from_slice(&(BLOCK_SIZE as u32).to_be_bytes());
                ScsiCompletion {
                    status: ScsiStatus::Good,
                    data,
                    cost: IoCost::FREE,
                }
            }
            Cdb::Read10 { lba, blocks } => {
                let mut data = vec![0u8; blocks as usize * BLOCK_SIZE];
                match self.device.read(lba as u64, blocks as u32, &mut data) {
                    Ok(cost) => ScsiCompletion {
                        status: ScsiStatus::Good,
                        data,
                        cost,
                    },
                    Err(e) => self.fail(e),
                }
            }
            Cdb::Write10 { lba, blocks } => {
                debug_assert_eq!(data_out.len(), blocks as usize * BLOCK_SIZE);
                match self.device.write(lba as u64, data_out) {
                    Ok(cost) => ScsiCompletion {
                        status: ScsiStatus::Good,
                        data: Vec::new(),
                        cost,
                    },
                    Err(e) => self.fail(e),
                }
            }
            Cdb::ModeSense6 { page } => {
                // Mode parameter header + the caching page (0x08):
                // write cache enabled, read ahead enabled — the
                // behaviours the testbed's timing models encode.
                let mut data = vec![0u8; 24];
                data[0] = 23; // mode data length
                data[4] = 0x08; // page code: caching
                data[5] = 18; // page length
                data[6] = 0b0000_0101; // WCE | RCD=0 (read cache on)
                let _ = page;
                ScsiCompletion {
                    status: ScsiStatus::Good,
                    data,
                    cost: IoCost::FREE,
                }
            }
            Cdb::ReportLuns => {
                let mut data = vec![0u8; 16];
                data[3] = 8; // LUN list length: one entry
                             // LUN 0 entry is all zeroes.
                ScsiCompletion {
                    status: ScsiStatus::Good,
                    data,
                    cost: IoCost::FREE,
                }
            }
            Cdb::SynchronizeCache10 { .. } => match self.device.flush() {
                Ok(cost) => ScsiCompletion {
                    status: ScsiStatus::Good,
                    data: Vec::new(),
                    cost,
                },
                Err(e) => self.fail(e),
            },
        }
    }

    fn fail(&self, e: blockdev::BlockError) -> ScsiCompletion {
        let key = match e {
            blockdev::BlockError::OutOfRange { .. } | blockdev::BlockError::Misaligned { .. } => {
                SenseKey::IllegalRequest
            }
            blockdev::BlockError::DeviceFailed { .. } => SenseKey::MediumError,
        };
        ScsiCompletion {
            status: ScsiStatus::CheckCondition(key),
            data: Vec::new(),
            cost: IoCost::FREE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::MemDisk;

    #[test]
    fn cdb_round_trips() {
        let cases = [
            Cdb::Read10 {
                lba: 0xDEAD_BEEF,
                blocks: 513,
            },
            Cdb::Write10 { lba: 1, blocks: 1 },
            Cdb::ReadCapacity10,
            Cdb::Inquiry,
            Cdb::SynchronizeCache10 { lba: 0, blocks: 0 },
            Cdb::TestUnitReady,
        ];
        for cdb in cases {
            assert_eq!(Cdb::decode(&cdb.encode()).unwrap(), cdb, "{cdb:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Cdb::decode(&[0xFF, 0, 0]),
            Err(CdbError::UnsupportedOpcode(0xFF))
        ));
        assert!(matches!(
            Cdb::decode(&[opcodes::READ_10, 0, 0]),
            Err(CdbError::Truncated { .. })
        ));
        assert!(matches!(Cdb::decode(&[]), Err(CdbError::Truncated { .. })));
    }

    #[test]
    fn read_write_through_target() {
        let dev = Rc::new(MemDisk::new("d", 64));
        let t = ScsiTarget::new(dev);
        let data = vec![0x5Au8; 2 * BLOCK_SIZE];
        let w = t.execute(Cdb::Write10 { lba: 3, blocks: 2 }, &data);
        assert_eq!(w.status, ScsiStatus::Good);
        let r = t.execute(Cdb::Read10 { lba: 3, blocks: 2 }, &[]);
        assert_eq!(r.status, ScsiStatus::Good);
        assert_eq!(r.data, data);
    }

    #[test]
    fn capacity_reports_block_size() {
        let t = ScsiTarget::new(Rc::new(MemDisk::new("d", 100)));
        let c = t.execute(Cdb::ReadCapacity10, &[]);
        assert_eq!(c.status, ScsiStatus::Good);
        let last = u32::from_be_bytes([c.data[0], c.data[1], c.data[2], c.data[3]]);
        let bs = u32::from_be_bytes([c.data[4], c.data[5], c.data[6], c.data[7]]);
        assert_eq!(last, 99);
        assert_eq!(bs, BLOCK_SIZE as u32);
    }

    #[test]
    fn read_into_matches_owned_read() {
        let dev = Rc::new(MemDisk::new("d", 16));
        let t = ScsiTarget::new(dev);
        let data = vec![0xA7u8; 2 * BLOCK_SIZE];
        t.execute(Cdb::Write10 { lba: 5, blocks: 2 }, &data);
        let owned = t.execute(Cdb::Read10 { lba: 5, blocks: 2 }, &[]);
        let mut buf = vec![0u8; 2 * BLOCK_SIZE];
        let r = t.execute_read_into(5, 2, &mut buf);
        assert_eq!(r.status, ScsiStatus::Good);
        assert!(r.data.is_empty(), "payload lands in the caller's buffer");
        assert_eq!(buf, owned.data);
        assert_eq!(r.cost, owned.cost);
    }

    #[test]
    fn read_into_out_of_range_is_illegal_request() {
        let t = ScsiTarget::new(Rc::new(MemDisk::new("d", 4)));
        let mut buf = vec![0u8; BLOCK_SIZE];
        let r = t.execute_read_into(10, 1, &mut buf);
        assert_eq!(
            r.status,
            ScsiStatus::CheckCondition(SenseKey::IllegalRequest)
        );
    }

    #[test]
    fn out_of_range_is_illegal_request() {
        let t = ScsiTarget::new(Rc::new(MemDisk::new("d", 4)));
        let r = t.execute(Cdb::Read10 { lba: 10, blocks: 1 }, &[]);
        assert_eq!(
            r.status,
            ScsiStatus::CheckCondition(SenseKey::IllegalRequest)
        );
    }

    #[test]
    fn data_phase_lengths() {
        assert_eq!(
            Cdb::Read10 { lba: 0, blocks: 3 }.data_in_len(),
            3 * BLOCK_SIZE
        );
        assert_eq!(
            Cdb::Write10 { lba: 0, blocks: 2 }.data_out_len(),
            2 * BLOCK_SIZE
        );
        assert_eq!(Cdb::ReadCapacity10.data_in_len(), 8);
        assert_eq!(Cdb::TestUnitReady.data_in_len(), 0);
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use blockdev::MemDisk;
    use std::rc::Rc;

    #[test]
    fn mode_sense_and_report_luns_round_trip() {
        for cdb in [Cdb::ModeSense6 { page: 0x08 }, Cdb::ReportLuns] {
            assert_eq!(Cdb::decode(&cdb.encode()).unwrap(), cdb);
        }
    }

    #[test]
    fn mode_sense_reports_write_cache_enabled() {
        let t = ScsiTarget::new(Rc::new(MemDisk::new("d", 64)));
        let c = t.execute(Cdb::ModeSense6 { page: 0x08 }, &[]);
        assert_eq!(c.status, ScsiStatus::Good);
        assert_eq!(c.data[4], 0x08, "caching page");
        assert_ne!(c.data[6] & 0x04, 0, "WCE set");
    }

    #[test]
    fn report_luns_lists_lun_zero() {
        let t = ScsiTarget::new(Rc::new(MemDisk::new("d", 64)));
        let c = t.execute(Cdb::ReportLuns, &[]);
        assert_eq!(c.status, ScsiStatus::Good);
        assert_eq!(c.data[3], 8, "one 8-byte LUN entry");
        assert!(c.data[8..16].iter().all(|&b| b == 0), "LUN 0");
    }
}
