//! A minimal, deterministic, dependency-free stand-in for the
//! `proptest` crate, so the workspace's property tests build and run
//! with no network/registry access.
//!
//! It implements exactly the surface our tests use: integer-range and
//! tuple strategies, [`Just`], `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, the `proptest!` macro with
//! `proptest_config`, and the `prop_assert!`/`prop_assert_eq!`
//! macros. Unlike real proptest there is **no shrinking** and no
//! persisted failure seeds: every test function draws its cases from
//! a [`SplitMix64`]-style generator seeded from the test name and
//! case index, so failures are reproducible run-to-run and a failing
//! case prints its inputs directly.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case `case` of the test named `name`. The seed
    /// is a stable hash of both, so cases are independent and every
    /// run draws the same sequence.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// A generator of test-case values. Object-safe; combinators live
/// behind `Self: Sized` bounds so `Box<dyn Strategy<Value = T>>`
/// works (needed by `prop_oneof!`).
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives; built by
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $ty)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `prop::collection` — sized collections of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size` and
    /// whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of real proptest's `prop::` path.
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one test function: `cases` deterministic draws, panicking
/// with the case's rendered inputs on the first failure. Used by the
/// expansion of `proptest!`.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), String>),
{
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(name, i);
        let (inputs, outcome) = case(&mut rng);
        if let Err(msg) = outcome {
            panic!(
                "proptest case {i}/{} of `{name}` failed: {msg}\ninputs:\n{inputs}",
                config.cases
            );
        }
    }
}

/// Renders one named input for the failure report.
pub fn render_input<T: Debug>(name: &str, value: &T) -> String {
    format!("  {name} = {value:?}\n")
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case and
/// reports its inputs rather than unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!("assertion failed: `{:?}` != `{:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Declares property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0u8..10, v in prop::collection::vec(0u8..4, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test function per
/// recursion step. The user-written `#[test]` attribute is captured
/// in `$meta` and re-emitted on the generated zero-argument function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let mut inputs = String::new();
                $(inputs.push_str(&$crate::render_input(stringify!($arg), &$arg));)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                (inputs, outcome)
            });
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The full macro surface: tuples, oneof, vec, map, assertions.
        #[test]
        fn macro_surface(
            pair in (0u16..10, 1u64..5).prop_map(|(a, b)| (a, b)),
            choice in prop_oneof![Just(0u8), 1u8..4, (4u8..9).prop_map(|x| x)],
            items in prop::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!(pair.0 < 10, "a out of range: {}", pair.0);
            prop_assert!(pair.1 >= 1 && pair.1 < 5);
            prop_assert!(choice < 9);
            prop_assert!(!items.is_empty() && items.len() < 20);
            let sum: u64 = items.iter().map(|&x| x as u64).sum();
            prop_assert_eq!(sum, items.iter().fold(0u64, |a, &b| a + b as u64));
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
