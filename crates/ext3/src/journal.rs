//! JBD-style meta-data journal.
//!
//! The running transaction collects the block numbers of modified
//! meta-data blocks; every commit interval (ext3's default of 5 s) the
//! commit daemon writes a *descriptor block* listing the targets, the
//! block images themselves, and a *commit record* to the journal
//! region. The descriptor and images are contiguous, so they leave the
//! client as **one** large sequential write command, followed by the
//! commit record — two transactions on the wire no matter how many
//! meta-data updates were batched. This is the paper's "aggregation of
//! meta-data updates" (§4.2), and it is why iSCSI's warm-cache message
//! counts stay flat.
//!
//! In-place ("checkpoint") writes are deferred until the journal fills
//! or the file system unmounts, as in real ext3. After a crash,
//! [`replay_scan`] recovers every committed-but-not-checkpointed
//! transaction; uncommitted updates are lost — exactly the reduced
//! persistence the paper attributes to iSCSI-plus-ext3 (§2.3).

use crate::error::{FsError, FsResult};
use blockdev::{BlockNo, BLOCK_SIZE};
use std::collections::BTreeMap;

/// Magic tag of a descriptor block.
pub const DESC_MAGIC: u32 = 0x4A44_5343; // "JDSC"
/// Magic tag of a commit record.
pub const COMMIT_MAGIC: u32 = 0x4A43_4D54; // "JCMT"

/// Maximum target blocks one descriptor can list.
pub const MAX_TXN_BLOCKS: usize = (BLOCK_SIZE - 16) / 8;

/// The journal's in-memory state.
#[derive(Debug)]
pub struct Journal {
    /// First block of the on-disk journal region.
    pub start: BlockNo,
    /// Region length in blocks.
    pub len: u64,
    /// Next free block within the region (relative).
    head: u64,
    /// Sequence number the next commit will carry.
    next_seq: u64,
    /// Running transaction: target block → committed image pending
    /// checkpoint is tracked separately; here just the dirty set.
    running: BTreeMap<BlockNo, ()>,
    /// Blocks committed to the journal but not yet written in place.
    checkpoint_pending: BTreeMap<BlockNo, [u8; BLOCK_SIZE]>,
}

/// The device writes a commit turns into. `commands` groups them the
/// way the block layer would merge them: one sequential burst for
/// descriptor + images, one for the commit record.
#[derive(Debug)]
pub struct CommitPlan {
    /// `(device block, image)` pairs, in write order.
    pub writes: Vec<(BlockNo, Vec<u8>)>,
    /// `(start block, number of blocks)` per merged write command.
    pub commands: Vec<(BlockNo, u32)>,
    /// Sequence number committed.
    pub seq: u64,
}

impl Journal {
    /// Creates an empty journal over the given region, starting at
    /// sequence `seq`.
    pub fn new(start: BlockNo, len: u64, seq: u64) -> Journal {
        Journal {
            start,
            len,
            head: 0,
            next_seq: seq,
            running: BTreeMap::new(),
            checkpoint_pending: BTreeMap::new(),
        }
    }

    /// Adds a meta-data block to the running transaction.
    pub fn add(&mut self, bno: BlockNo) {
        self.running.insert(bno, ());
    }

    /// True if the running transaction has no blocks.
    pub fn running_is_empty(&self) -> bool {
        self.running.is_empty()
    }

    /// Sequence number the next commit will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Journal blocks needed to commit the next slice of the running
    /// transaction (oversized transactions split across commits).
    pub fn blocks_needed(&self) -> u64 {
        if self.running.is_empty() {
            0
        } else {
            // descriptor + images + commit
            2 + self.running.len().min(MAX_TXN_BLOCKS) as u64
        }
    }

    /// True if committing now would overflow the region (a checkpoint
    /// must run first).
    pub fn needs_checkpoint(&self) -> bool {
        self.head + self.blocks_needed() > self.len
    }

    /// Builds the commit plan for the running transaction, given a
    /// snapshot function that returns the current image of each dirty
    /// block. Clears the running transaction and moves its blocks to
    /// the checkpoint-pending set.
    ///
    /// Returns `None` when there is nothing to commit.
    ///
    /// # Panics
    ///
    /// Panics if the region is full — callers must checkpoint first
    /// (see [`needs_checkpoint`](Journal::needs_checkpoint)).
    pub fn commit(
        &mut self,
        mut image_of: impl FnMut(BlockNo) -> [u8; BLOCK_SIZE],
    ) -> Option<CommitPlan> {
        if self.running.is_empty() {
            return None;
        }
        assert!(
            !self.needs_checkpoint(),
            "journal full: checkpoint required before commit"
        );
        let seq = self.next_seq;
        self.next_seq += 1;

        // Oversized transactions split across commits, as in JBD.
        let targets: Vec<BlockNo> = self.running.keys().copied().take(MAX_TXN_BLOCKS).collect();
        for t in &targets {
            self.running.remove(t);
        }

        // Descriptor block.
        let mut desc = vec![0u8; BLOCK_SIZE];
        desc[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[4..12].copy_from_slice(&seq.to_le_bytes());
        desc[12..16].copy_from_slice(&(targets.len() as u32).to_le_bytes());
        for (i, t) in targets.iter().enumerate() {
            desc[16 + i * 8..24 + i * 8].copy_from_slice(&t.to_le_bytes());
        }

        let mut writes = Vec::with_capacity(targets.len() + 2);
        let base = self.start + self.head;
        writes.push((base, desc));
        for (i, &t) in targets.iter().enumerate() {
            let img = image_of(t);
            self.checkpoint_pending.insert(t, img);
            writes.push((base + 1 + i as u64, img.to_vec()));
        }

        // Commit record.
        let mut commit = vec![0u8; BLOCK_SIZE];
        commit[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        commit[4..12].copy_from_slice(&seq.to_le_bytes());
        let commit_block = base + 1 + targets.len() as u64;
        writes.push((commit_block, commit));

        let commands = vec![
            (base, 1 + targets.len() as u32), // descriptor + images, merged
            (commit_block, 1),                // commit record after a barrier
        ];

        self.head += 2 + targets.len() as u64;
        Some(CommitPlan {
            writes,
            commands,
            seq,
        })
    }

    /// Takes the checkpoint-pending images (sorted by target block)
    /// and resets the log head. The caller writes them in place and
    /// persists the advanced sequence number in the superblock.
    pub fn take_checkpoint(&mut self) -> Vec<(BlockNo, [u8; BLOCK_SIZE])> {
        self.head = 0;
        std::mem::take(&mut self.checkpoint_pending)
            .into_iter()
            .collect()
    }

    /// Number of blocks awaiting checkpoint.
    pub fn checkpoint_pending_len(&self) -> usize {
        self.checkpoint_pending.len()
    }

    /// The committed image of `bno` if it awaits checkpoint. Readers
    /// must prefer this over the device: the home location is stale
    /// until the checkpoint writes it back.
    pub fn pending_image(&self, bno: BlockNo) -> Option<[u8; BLOCK_SIZE]> {
        self.checkpoint_pending.get(&bno).copied()
    }
}

/// Scans a journal region image for transactions with sequence numbers
/// `>= min_seq`, in order, stopping at the first gap or invalid
/// record. Returns the recovered `(target block, image)` writes (later
/// transactions override earlier ones) and the next sequence number.
///
/// # Errors
///
/// Returns [`FsError::Corrupt`] if a descriptor is malformed (count
/// out of range).
pub fn replay_scan(
    region: &[u8],
    min_seq: u64,
) -> FsResult<(BTreeMap<BlockNo, [u8; BLOCK_SIZE]>, u64)> {
    let nblocks = region.len() / BLOCK_SIZE;
    let mut recovered: BTreeMap<BlockNo, [u8; BLOCK_SIZE]> = BTreeMap::new();
    let mut expect_seq = min_seq;
    let mut i = 0usize;
    while i < nblocks {
        let b = &region[i * BLOCK_SIZE..][..BLOCK_SIZE];
        let magic = u32::from_le_bytes(b[0..4].try_into().unwrap());
        if magic != DESC_MAGIC {
            break;
        }
        let seq = u64::from_le_bytes(b[4..12].try_into().unwrap());
        if seq != expect_seq {
            break;
        }
        let count = u32::from_le_bytes(b[12..16].try_into().unwrap()) as usize;
        if count == 0 || count > MAX_TXN_BLOCKS || i + 1 + count >= nblocks {
            return Err(FsError::Corrupt("journal descriptor out of range"));
        }
        // The transaction only counts if its commit record landed.
        let cb = &region[(i + 1 + count) * BLOCK_SIZE..][..BLOCK_SIZE];
        let cmagic = u32::from_le_bytes(cb[0..4].try_into().unwrap());
        let cseq = u64::from_le_bytes(cb[4..12].try_into().unwrap());
        if cmagic != COMMIT_MAGIC || cseq != seq {
            break; // torn commit: everything from here on is discarded
        }
        for k in 0..count {
            let target = u64::from_le_bytes(b[16 + k * 8..24 + k * 8].try_into().unwrap());
            let img = &region[(i + 1 + k) * BLOCK_SIZE..][..BLOCK_SIZE];
            let mut a = [0u8; BLOCK_SIZE];
            a.copy_from_slice(img);
            recovered.insert(target, a);
        }
        expect_seq = seq + 1;
        i += 2 + count;
    }
    Ok((recovered, expect_seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: u8) -> [u8; BLOCK_SIZE] {
        [fill; BLOCK_SIZE]
    }

    fn region_from(writes: &[(BlockNo, Vec<u8>)], start: BlockNo, len: u64) -> Vec<u8> {
        let mut region = vec![0u8; (len as usize) * BLOCK_SIZE];
        for (bno, data) in writes {
            let off = ((bno - start) as usize) * BLOCK_SIZE;
            region[off..off + BLOCK_SIZE].copy_from_slice(data);
        }
        region
    }

    #[test]
    fn empty_transaction_commits_nothing() {
        let mut j = Journal::new(2, 64, 1);
        assert!(j.commit(|_| image(0)).is_none());
        assert_eq!(j.blocks_needed(), 0);
    }

    #[test]
    fn commit_produces_two_commands() {
        let mut j = Journal::new(2, 64, 1);
        j.add(100);
        j.add(50);
        j.add(100); // duplicate folds away
        assert_eq!(j.blocks_needed(), 4); // desc + 2 images + commit
        let plan = j.commit(|b| image(b as u8)).unwrap();
        assert_eq!(plan.commands.len(), 2);
        assert_eq!(plan.commands[0], (2, 3));
        assert_eq!(plan.commands[1], (5, 1));
        assert_eq!(plan.writes.len(), 4);
        assert!(j.running_is_empty());
        assert_eq!(j.checkpoint_pending_len(), 2);
    }

    #[test]
    fn replay_recovers_committed_transactions() {
        let mut j = Journal::new(2, 64, 1);
        j.add(100);
        let p1 = j.commit(|_| image(1)).unwrap();
        j.add(200);
        j.add(100); // overwrite 100 in a later txn
        let p2 = j.commit(|b| image(if b == 100 { 9 } else { 2 })).unwrap();
        let mut all = p1.writes.clone();
        all.extend(p2.writes.clone());
        let region = region_from(&all, 2, 64);
        let (rec, next) = replay_scan(&region, 1).unwrap();
        assert_eq!(next, 3);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[&100][0], 9, "later transaction wins");
        assert_eq!(rec[&200][0], 2);
    }

    #[test]
    fn replay_ignores_torn_commit() {
        let mut j = Journal::new(2, 64, 1);
        j.add(100);
        let p1 = j.commit(|_| image(1)).unwrap();
        j.add(200);
        let mut p2 = j.commit(|_| image(2)).unwrap();
        // Drop the commit record of txn 2 ("crash mid-commit").
        p2.writes.pop();
        let mut all = p1.writes.clone();
        all.extend(p2.writes);
        let region = region_from(&all, 2, 64);
        let (rec, next) = replay_scan(&region, 1).unwrap();
        assert_eq!(next, 2);
        assert!(rec.contains_key(&100));
        assert!(!rec.contains_key(&200), "uncommitted txn discarded");
    }

    #[test]
    fn replay_respects_min_seq() {
        let mut j = Journal::new(2, 64, 5);
        j.add(100);
        let p = j.commit(|_| image(1)).unwrap();
        let region = region_from(&p.writes, 2, 64);
        // Already checkpointed past seq 5: nothing to replay.
        let (rec, next) = replay_scan(&region, 6).unwrap();
        assert!(rec.is_empty());
        assert_eq!(next, 6);
    }

    #[test]
    fn checkpoint_resets_head() {
        let mut j = Journal::new(2, 8, 1);
        j.add(100);
        j.add(101);
        j.commit(|_| image(1)).unwrap();
        // head = 4 of 8; a 3-block txn (2 targets) fits exactly…
        j.add(102);
        assert!(!j.needs_checkpoint());
        j.add(103);
        j.add(104);
        // desc + 3 + commit = 5 > remaining 4.
        assert!(j.needs_checkpoint());
        let cp = j.take_checkpoint();
        assert_eq!(cp.len(), 2);
        assert_eq!(cp[0].0, 100);
        assert!(!j.needs_checkpoint());
        assert!(j.commit(|_| image(2)).is_some());
    }

    #[test]
    fn replay_rejects_corrupt_descriptor() {
        let mut region = vec![0u8; 8 * BLOCK_SIZE];
        region[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        region[4..12].copy_from_slice(&1u64.to_le_bytes());
        region[12..16].copy_from_slice(&10_000u32.to_le_bytes()); // absurd count
        assert!(replay_scan(&region, 1).is_err());
    }

    #[test]
    fn empty_region_replays_clean() {
        let region = vec![0u8; 8 * BLOCK_SIZE];
        let (rec, next) = replay_scan(&region, 3).unwrap();
        assert!(rec.is_empty());
        assert_eq!(next, 3);
    }
}
