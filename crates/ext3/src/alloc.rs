//! Bitmap primitives for block and inode allocation.

/// Tests bit `i` of a bitmap block.
pub fn test_bit(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

/// Sets bit `i`; returns the previous value.
pub fn set_bit(bitmap: &mut [u8], i: usize) -> bool {
    let was = test_bit(bitmap, i);
    bitmap[i / 8] |= 1 << (i % 8);
    was
}

/// Clears bit `i`; returns the previous value.
pub fn clear_bit(bitmap: &mut [u8], i: usize) -> bool {
    let was = test_bit(bitmap, i);
    bitmap[i / 8] &= !(1 << (i % 8));
    was
}

/// Finds the first zero bit in `[start, limit)`, preferring `start`
/// onward then wrapping to the beginning (allocation-locality hint).
pub fn find_zero(bitmap: &[u8], start: usize, limit: usize) -> Option<usize> {
    debug_assert!(limit <= bitmap.len() * 8);
    let probe = |range: std::ops::Range<usize>| {
        for i in range {
            // Skip whole bytes of ones quickly.
            if i % 8 == 0 && i + 8 <= limit && bitmap[i / 8] == 0xFF {
                continue;
            }
            if !test_bit(bitmap, i) {
                return Some(i);
            }
        }
        None
    };
    probe(start.min(limit)..limit).or_else(|| probe(0..start.min(limit)))
}

/// Counts zero bits in `[0, limit)`.
pub fn count_zeros(bitmap: &[u8], limit: usize) -> usize {
    (0..limit).filter(|&i| !test_bit(bitmap, i)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_test() {
        let mut b = vec![0u8; 4];
        assert!(!set_bit(&mut b, 5));
        assert!(test_bit(&b, 5));
        assert!(set_bit(&mut b, 5));
        assert!(clear_bit(&mut b, 5));
        assert!(!test_bit(&b, 5));
        assert!(!clear_bit(&mut b, 5));
    }

    #[test]
    fn find_zero_respects_hint_and_wraps() {
        let mut b = vec![0u8; 2]; // 16 bits
        for i in 0..16 {
            set_bit(&mut b, i);
        }
        clear_bit(&mut b, 3);
        clear_bit(&mut b, 12);
        assert_eq!(find_zero(&b, 10, 16), Some(12));
        assert_eq!(find_zero(&b, 13, 16), Some(3), "wraps to the front");
        set_bit(&mut b, 3);
        set_bit(&mut b, 12);
        assert_eq!(find_zero(&b, 0, 16), None);
    }

    #[test]
    fn find_zero_honours_limit() {
        let b = vec![0u8; 2];
        // All zero but the limit fences the search.
        assert_eq!(find_zero(&b, 0, 1), Some(0));
        // Start beyond the limit still wraps to the front.
        assert_eq!(find_zero(&b, 5, 5), Some(0));
        assert_eq!(find_zero(&[0xFFu8; 2], 5, 5), None);
    }

    #[test]
    fn fast_path_skips_full_bytes() {
        let mut b = vec![0xFFu8; 128];
        b[100] = 0b1111_0111;
        assert_eq!(find_zero(&b, 0, 1024), Some(803));
    }

    #[test]
    fn count_zeros_counts() {
        let mut b = vec![0u8; 2];
        set_bit(&mut b, 0);
        set_bit(&mut b, 9);
        assert_eq!(count_zeros(&b, 16), 14);
        assert_eq!(count_zeros(&b, 8), 7);
    }
}
