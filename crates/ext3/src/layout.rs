//! On-disk layout: superblock, group descriptors, and inodes, with
//! real byte-level encoding so the file system survives unmount,
//! remount, and crash-replay across a raw block device.
//!
//! The layout follows ext2/ext3 in spirit at 4 KiB block size:
//!
//! ```text
//! block 0               superblock
//! block 1               group descriptor table
//! block 2..2+J          journal region (J blocks, fixed at mkfs)
//! then per group g:     block bitmap, inode bitmap, inode table,
//!                       data blocks
//! ```

use crate::error::{FsError, FsResult};
use blockdev::BLOCK_SIZE;

/// Magic number identifying the file system ("XT3S" little-endian).
pub const SUPER_MAGIC: u32 = 0x5333_5458;
/// Inode size in bytes (ext2's enlarged inode).
pub const INODE_SIZE: usize = 128;
/// Inodes per on-disk inode-table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;
/// Blocks covered by one block-bitmap block (one group).
pub const BLOCKS_PER_GROUP: u64 = (BLOCK_SIZE * 8) as u64;
/// Inodes per group.
pub const INODES_PER_GROUP: u64 = 8192;
/// Inode-table blocks per group.
pub const ITABLE_BLOCKS: u64 = INODES_PER_GROUP / INODES_PER_BLOCK as u64;
/// The root directory's inode number (ext2 convention).
pub const ROOT_INO: u32 = 2;
/// First inode number handed out to ordinary files.
pub const FIRST_FREE_INO: u32 = 11;
/// Direct block pointers in an inode.
pub const N_DIRECT: usize = 12;
/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 4;
/// Longest symlink target stored inline in the inode ("fast" symlink).
pub const FAST_SYMLINK_MAX: usize = (N_DIRECT + 2) * 4;
/// Maximum file name length.
pub const NAME_MAX: usize = 255;
/// Maximum hard links per inode.
pub const LINK_MAX: u16 = 32000;

/// File type bits stored in an inode's mode (high nibble-ish, as in
/// POSIX `S_IFMT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// The `S_IFMT` bits for this type.
    pub fn mode_bits(self) -> u16 {
        match self {
            FileType::Regular => 0o100000,
            FileType::Directory => 0o040000,
            FileType::Symlink => 0o120000,
        }
    }

    /// Parses the `S_IFMT` bits of a mode.
    pub fn from_mode(mode: u16) -> FsResult<FileType> {
        match mode & 0o170000 {
            0o100000 => Ok(FileType::Regular),
            0o040000 => Ok(FileType::Directory),
            0o120000 => Ok(FileType::Symlink),
            _ => Err(FsError::Corrupt("unknown file type in mode")),
        }
    }

    /// Directory-entry type code.
    pub fn dirent_code(self) -> u8 {
        match self {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 7,
        }
    }
}

/// The superblock, stored in block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock {
    /// Total blocks on the volume.
    pub blocks_count: u64,
    /// Number of block groups.
    pub groups_count: u32,
    /// First block of the journal region.
    pub journal_start: u64,
    /// Length of the journal region in blocks.
    pub journal_len: u64,
    /// Next journal sequence number to use after the last clean
    /// shutdown (replay scans for sequences ≥ this - epsilon).
    pub journal_seq: u64,
    /// 1 if the file system was unmounted cleanly.
    pub clean: bool,
}

impl SuperBlock {
    /// Serializes into a 4 KiB block image.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        b[8..16].copy_from_slice(&self.blocks_count.to_le_bytes());
        b[16..20].copy_from_slice(&self.groups_count.to_le_bytes());
        b[24..32].copy_from_slice(&self.journal_start.to_le_bytes());
        b[32..40].copy_from_slice(&self.journal_len.to_le_bytes());
        b[40..48].copy_from_slice(&self.journal_seq.to_le_bytes());
        b[48] = self.clean as u8;
        b
    }

    /// Parses a superblock image.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] on a bad magic number.
    pub fn decode(b: &[u8]) -> FsResult<SuperBlock> {
        let magic = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        if magic != SUPER_MAGIC {
            return Err(FsError::Corrupt("bad superblock magic"));
        }
        Ok(SuperBlock {
            blocks_count: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            groups_count: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            journal_start: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            journal_len: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            journal_seq: u64::from_le_bytes(b[40..48].try_into().unwrap()),
            clean: b[48] != 0,
        })
    }
}

/// Per-group bookkeeping, all groups packed into block 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDesc {
    /// Block number of the group's block bitmap.
    pub block_bitmap: u64,
    /// Block number of the group's inode bitmap.
    pub inode_bitmap: u64,
    /// First block of the group's inode table.
    pub inode_table: u64,
    /// Free blocks in the group (allocator hint).
    pub free_blocks: u32,
    /// Free inodes in the group.
    pub free_inodes: u32,
}

/// Bytes per encoded group descriptor.
pub const GROUP_DESC_SIZE: usize = 32;

impl GroupDesc {
    /// Serializes into `GROUP_DESC_SIZE` bytes.
    pub fn encode(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.block_bitmap.to_le_bytes());
        out[8..16].copy_from_slice(&self.inode_bitmap.to_le_bytes());
        out[16..24].copy_from_slice(&self.inode_table.to_le_bytes());
        out[24..28].copy_from_slice(&self.free_blocks.to_le_bytes());
        out[28..32].copy_from_slice(&self.free_inodes.to_le_bytes());
    }

    /// Parses from `GROUP_DESC_SIZE` bytes.
    pub fn decode(b: &[u8]) -> GroupDesc {
        GroupDesc {
            block_bitmap: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            inode_bitmap: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            inode_table: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            free_blocks: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            free_inodes: u32::from_le_bytes(b[28..32].try_into().unwrap()),
        }
    }
}

/// An in-memory inode, 1:1 with its 128-byte on-disk image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File type and permission bits.
    pub mode: u16,
    /// Hard-link count.
    pub links: u16,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// Access time (ns since epoch of the simulation).
    pub atime: u64,
    /// Modification time.
    pub mtime: u64,
    /// Change time.
    pub ctime: u64,
    /// 12 direct pointers, 1 indirect, 1 double indirect. Zero means
    /// "hole". For fast symlinks this area holds the target bytes.
    pub block: [u32; N_DIRECT + 2],
    /// Blocks actually allocated to the file (for `stat.st_blocks`
    /// and the fsck accounting).
    pub nblocks: u32,
}

impl Inode {
    /// A zeroed (free) inode.
    pub fn empty() -> Inode {
        Inode {
            mode: 0,
            links: 0,
            uid: 0,
            gid: 0,
            size: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            block: [0; N_DIRECT + 2],
            nblocks: 0,
        }
    }

    /// A fresh inode of the given type and permissions.
    pub fn new(ftype: FileType, perms: u16, now: u64) -> Inode {
        Inode {
            mode: ftype.mode_bits() | (perms & 0o7777),
            links: 1,
            uid: 0,
            gid: 0,
            size: 0,
            atime: now,
            mtime: now,
            ctime: now,
            block: [0; N_DIRECT + 2],
            nblocks: 0,
        }
    }

    /// The inode's file type.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] if the mode bits are invalid.
    pub fn file_type(&self) -> FsResult<FileType> {
        FileType::from_mode(self.mode)
    }

    /// True if the inode is unallocated.
    pub fn is_free(&self) -> bool {
        self.mode == 0 && self.links == 0
    }

    /// Serializes into a 128-byte slot.
    pub fn encode(&self, out: &mut [u8]) {
        out[..INODE_SIZE].fill(0);
        out[0..2].copy_from_slice(&self.mode.to_le_bytes());
        out[2..4].copy_from_slice(&self.links.to_le_bytes());
        out[4..8].copy_from_slice(&self.uid.to_le_bytes());
        out[8..12].copy_from_slice(&self.gid.to_le_bytes());
        out[12..20].copy_from_slice(&self.size.to_le_bytes());
        out[20..28].copy_from_slice(&self.atime.to_le_bytes());
        out[28..36].copy_from_slice(&self.mtime.to_le_bytes());
        out[36..44].copy_from_slice(&self.ctime.to_le_bytes());
        for (i, p) in self.block.iter().enumerate() {
            out[44 + i * 4..48 + i * 4].copy_from_slice(&p.to_le_bytes());
        }
        out[100..104].copy_from_slice(&self.nblocks.to_le_bytes());
    }

    /// Parses from a 128-byte slot.
    pub fn decode(b: &[u8]) -> Inode {
        let mut block = [0u32; N_DIRECT + 2];
        for (i, p) in block.iter_mut().enumerate() {
            *p = u32::from_le_bytes(b[44 + i * 4..48 + i * 4].try_into().unwrap());
        }
        Inode {
            mode: u16::from_le_bytes(b[0..2].try_into().unwrap()),
            links: u16::from_le_bytes(b[2..4].try_into().unwrap()),
            uid: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            gid: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            size: u64::from_le_bytes(b[12..20].try_into().unwrap()),
            atime: u64::from_le_bytes(b[20..28].try_into().unwrap()),
            mtime: u64::from_le_bytes(b[28..36].try_into().unwrap()),
            ctime: u64::from_le_bytes(b[36..44].try_into().unwrap()),
            block,
            nblocks: u32::from_le_bytes(b[100..104].try_into().unwrap()),
        }
    }

    /// Reads the fast-symlink target stored in the pointer area.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotASymlink`] for other inode types.
    pub fn fast_symlink_target(&self) -> FsResult<String> {
        if self.file_type()? != FileType::Symlink {
            return Err(FsError::NotASymlink);
        }
        let mut bytes = Vec::with_capacity(self.size as usize);
        for p in &self.block {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        bytes.truncate(self.size as usize);
        String::from_utf8(bytes).map_err(|_| FsError::Corrupt("symlink target not UTF-8"))
    }

    /// Stores a fast-symlink target in the pointer area.
    ///
    /// # Panics
    ///
    /// Panics if the target exceeds [`FAST_SYMLINK_MAX`].
    pub fn set_fast_symlink_target(&mut self, target: &str) {
        assert!(target.len() <= FAST_SYMLINK_MAX);
        let mut bytes = [0u8; FAST_SYMLINK_MAX];
        bytes[..target.len()].copy_from_slice(target.as_bytes());
        for (i, p) in self.block.iter_mut().enumerate() {
            *p = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
        self.size = target.len() as u64;
    }
}

/// Computed block addresses for one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    /// First block of the group.
    pub start: u64,
    /// Block bitmap block.
    pub block_bitmap: u64,
    /// Inode bitmap block.
    pub inode_bitmap: u64,
    /// First inode-table block.
    pub inode_table: u64,
    /// First data block.
    pub data_start: u64,
    /// One past the last block of the group.
    pub end: u64,
}

/// Computes the layout of group `g` for a volume with a journal of
/// `journal_len` blocks. Groups start after block 0 (superblock),
/// block 1 (descriptors), and the journal region.
pub fn group_layout(g: u32, journal_len: u64, blocks_count: u64) -> GroupLayout {
    let meta_end = 2 + journal_len;
    let start = meta_end + g as u64 * BLOCKS_PER_GROUP;
    let end = (start + BLOCKS_PER_GROUP).min(blocks_count);
    GroupLayout {
        start,
        block_bitmap: start,
        inode_bitmap: start + 1,
        inode_table: start + 2,
        data_start: start + 2 + ITABLE_BLOCKS,
        end,
    }
}

/// Number of groups for a volume of `blocks_count` blocks and a
/// journal of `journal_len` blocks (partial trailing groups allowed as
/// long as they can hold their metadata).
pub fn groups_for(blocks_count: u64, journal_len: u64) -> u32 {
    let meta_end = 2 + journal_len;
    assert!(
        blocks_count > meta_end + 2 + ITABLE_BLOCKS + 64,
        "volume too small"
    );
    let usable = blocks_count - meta_end;
    let full = usable / BLOCKS_PER_GROUP;
    let rem = usable % BLOCKS_PER_GROUP;
    let min_group = 2 + ITABLE_BLOCKS + 64; // metadata + a few data blocks
    (full + u64::from(rem >= min_group)).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trips() {
        let sb = SuperBlock {
            blocks_count: 1 << 20,
            groups_count: 32,
            journal_start: 2,
            journal_len: 1024,
            journal_seq: 99,
            clean: true,
        };
        assert_eq!(SuperBlock::decode(&sb.encode()).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_bad_magic() {
        let b = vec![0u8; BLOCK_SIZE];
        assert!(matches!(
            SuperBlock::decode(&b),
            Err(FsError::Corrupt("bad superblock magic"))
        ));
    }

    #[test]
    fn group_desc_round_trips() {
        let gd = GroupDesc {
            block_bitmap: 100,
            inode_bitmap: 101,
            inode_table: 102,
            free_blocks: 5000,
            free_inodes: 8000,
        };
        let mut buf = [0u8; GROUP_DESC_SIZE];
        gd.encode(&mut buf);
        assert_eq!(GroupDesc::decode(&buf), gd);
    }

    #[test]
    fn inode_round_trips() {
        let mut ino = Inode::new(FileType::Regular, 0o644, 12345);
        ino.size = 1 << 33;
        ino.links = 3;
        ino.block[0] = 77;
        ino.block[13] = 0xFFFF_FFFF;
        ino.nblocks = 9;
        let mut buf = [0u8; INODE_SIZE];
        ino.encode(&mut buf);
        assert_eq!(Inode::decode(&buf), ino);
    }

    #[test]
    fn fresh_inode_has_one_link() {
        let ino = Inode::new(FileType::Directory, 0o755, 0);
        assert_eq!(ino.links, 1);
        assert_eq!(ino.file_type().unwrap(), FileType::Directory);
        assert!(!ino.is_free());
        assert!(Inode::empty().is_free());
    }

    #[test]
    fn fast_symlink_round_trips() {
        let mut ino = Inode::new(FileType::Symlink, 0o777, 0);
        ino.set_fast_symlink_target("../some/where");
        assert_eq!(ino.fast_symlink_target().unwrap(), "../some/where");
        // Non-symlink rejects.
        let f = Inode::new(FileType::Regular, 0o644, 0);
        assert_eq!(f.fast_symlink_target(), Err(FsError::NotASymlink));
    }

    #[test]
    fn group_layout_is_contiguous() {
        let jlen = 256;
        let blocks = 200_000;
        let g0 = group_layout(0, jlen, blocks);
        assert_eq!(g0.start, 2 + jlen);
        assert_eq!(g0.data_start, g0.inode_table + ITABLE_BLOCKS);
        let g1 = group_layout(1, jlen, blocks);
        assert_eq!(g1.start, g0.start + BLOCKS_PER_GROUP);
    }

    #[test]
    fn groups_for_counts_partials() {
        let jlen = 256;
        // Exactly one full group plus a viable partial.
        let blocks = 2 + jlen + BLOCKS_PER_GROUP + 2 + ITABLE_BLOCKS + 100;
        assert_eq!(groups_for(blocks, jlen), 2);
        // A tiny tail is ignored.
        let blocks = 2 + jlen + BLOCKS_PER_GROUP + 10;
        assert_eq!(groups_for(blocks, jlen), 1);
    }

    #[test]
    fn file_types_round_trip_mode_bits() {
        for t in [FileType::Regular, FileType::Directory, FileType::Symlink] {
            assert_eq!(FileType::from_mode(t.mode_bits() | 0o644).unwrap(), t);
        }
        assert!(FileType::from_mode(0).is_err());
    }
}
