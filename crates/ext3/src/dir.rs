//! Directory-entry blocks in the classic ext2 linear format.
//!
//! Each directory data block is a chain of records:
//!
//! ```text
//! | ino: u32 | rec_len: u16 | name_len: u8 | ftype: u8 | name ... pad |
//! ```
//!
//! `rec_len` always reaches the next record (or the end of the block),
//! so deletion just folds a record's space into its predecessor — the
//! same trick real ext2/ext3 uses.

use crate::error::{FsError, FsResult};
use crate::layout::{FileType, NAME_MAX};
use blockdev::BLOCK_SIZE;

/// Fixed header bytes before the name.
pub const DIRENT_HEADER: usize = 8;

/// A parsed directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number (0 = unused slot).
    pub ino: u32,
    /// Entry name.
    pub name: String,
    /// File type code (see [`FileType::dirent_code`]).
    pub ftype: u8,
}

fn rec_len_for(name_len: usize) -> usize {
    (DIRENT_HEADER + name_len + 3) & !3
}

fn read_rec(block: &[u8], off: usize) -> (u32, usize, usize, u8) {
    let ino = u32::from_le_bytes(block[off..off + 4].try_into().unwrap());
    let rec_len = u16::from_le_bytes(block[off + 4..off + 6].try_into().unwrap()) as usize;
    let name_len = block[off + 6] as usize;
    let ftype = block[off + 7];
    (ino, rec_len, name_len, ftype)
}

/// Initializes an empty directory block: one free record spanning the
/// whole block.
pub fn init_block(block: &mut [u8]) {
    block.fill(0);
    block[4..6].copy_from_slice(&(BLOCK_SIZE as u16).to_le_bytes());
}

/// Validates a name for use as a directory entry.
///
/// # Errors
///
/// Returns [`FsError::InvalidName`] for empty names, names over
/// [`NAME_MAX`], or names containing `/` or NUL.
pub fn check_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name.len() > NAME_MAX || name.contains(['/', '\0']) {
        return Err(FsError::InvalidName);
    }
    Ok(())
}

/// Iterates the live entries of one directory block.
pub fn entries(block: &[u8]) -> Vec<DirEntry> {
    let mut out = Vec::new();
    let mut off = 0;
    while off + DIRENT_HEADER <= BLOCK_SIZE {
        let (ino, rec_len, name_len, ftype) = read_rec(block, off);
        if rec_len < DIRENT_HEADER || off + rec_len > BLOCK_SIZE {
            break; // corrupt chain: stop rather than loop
        }
        if ino != 0 && name_len > 0 {
            let name =
                String::from_utf8_lossy(&block[off + DIRENT_HEADER..][..name_len]).into_owned();
            out.push(DirEntry { ino, name, ftype });
        }
        off += rec_len;
    }
    out
}

/// Finds `name` in the block; returns its inode and type.
pub fn find(block: &[u8], name: &str) -> Option<(u32, u8)> {
    let mut off = 0;
    while off + DIRENT_HEADER <= BLOCK_SIZE {
        let (ino, rec_len, name_len, ftype) = read_rec(block, off);
        if rec_len < DIRENT_HEADER || off + rec_len > BLOCK_SIZE {
            break;
        }
        if ino != 0
            && name_len == name.len()
            && &block[off + DIRENT_HEADER..][..name_len] == name.as_bytes()
        {
            return Some((ino, ftype));
        }
        off += rec_len;
    }
    None
}

/// Inserts an entry, splitting a record with enough slack. Returns
/// `true` on success, `false` if the block is full.
pub fn insert(block: &mut [u8], name: &str, ino: u32, ftype: FileType) -> bool {
    debug_assert!(check_name(name).is_ok());
    let needed = rec_len_for(name.len());
    let mut off = 0;
    while off + DIRENT_HEADER <= BLOCK_SIZE {
        let (cur_ino, rec_len, name_len, _) = read_rec(block, off);
        if rec_len < DIRENT_HEADER || off + rec_len > BLOCK_SIZE {
            return false;
        }
        let used = if cur_ino == 0 {
            0
        } else {
            rec_len_for(name_len)
        };
        if rec_len - used >= needed {
            let (slot, slot_len) = if cur_ino == 0 {
                (off, rec_len)
            } else {
                // Shrink the current record to its used size and carve
                // the new one out of the tail.
                block[off + 4..off + 6].copy_from_slice(&(used as u16).to_le_bytes());
                (off + used, rec_len - used)
            };
            block[slot..slot + 4].copy_from_slice(&ino.to_le_bytes());
            block[slot + 4..slot + 6].copy_from_slice(&(slot_len as u16).to_le_bytes());
            block[slot + 6] = name.len() as u8;
            block[slot + 7] = ftype.dirent_code();
            block[slot + DIRENT_HEADER..][..name.len()].copy_from_slice(name.as_bytes());
            return true;
        }
        off += rec_len;
    }
    false
}

/// Removes `name` from the block. Returns the removed inode number, or
/// `None` if absent.
pub fn remove(block: &mut [u8], name: &str) -> Option<u32> {
    let mut prev: Option<usize> = None;
    let mut off = 0;
    while off + DIRENT_HEADER <= BLOCK_SIZE {
        let (ino, rec_len, name_len, _) = read_rec(block, off);
        if rec_len < DIRENT_HEADER || off + rec_len > BLOCK_SIZE {
            return None;
        }
        if ino != 0
            && name_len == name.len()
            && &block[off + DIRENT_HEADER..][..name_len] == name.as_bytes()
        {
            match prev {
                Some(p) => {
                    // Fold this record into its predecessor.
                    let (_, prev_len, _, _) = read_rec(block, p);
                    let merged = (prev_len + rec_len) as u16;
                    block[p + 4..p + 6].copy_from_slice(&merged.to_le_bytes());
                }
                None => {
                    // First record: mark the slot free, keep rec_len.
                    block[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
                    block[off + 6] = 0;
                }
            }
            return Some(ino);
        }
        prev = Some(off);
        off += rec_len;
    }
    None
}

/// Replaces the inode an existing entry points at (rename-over).
/// Returns the old inode, or `None` if the name is absent.
pub fn replace(block: &mut [u8], name: &str, new_ino: u32, ftype: FileType) -> Option<u32> {
    let mut off = 0;
    while off + DIRENT_HEADER <= BLOCK_SIZE {
        let (ino, rec_len, name_len, _) = read_rec(block, off);
        if rec_len < DIRENT_HEADER || off + rec_len > BLOCK_SIZE {
            return None;
        }
        if ino != 0
            && name_len == name.len()
            && &block[off + DIRENT_HEADER..][..name_len] == name.as_bytes()
        {
            block[off..off + 4].copy_from_slice(&new_ino.to_le_bytes());
            block[off + 7] = ftype.dirent_code();
            return Some(ino);
        }
        off += rec_len;
    }
    None
}

/// True if the block holds no live entries other than `.` and `..`.
pub fn is_effectively_empty(block: &[u8]) -> bool {
    entries(block)
        .iter()
        .all(|e| e.name == "." || e.name == "..")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        init_block(&mut b);
        b
    }

    #[test]
    fn empty_block_has_no_entries() {
        let b = fresh();
        assert!(entries(&b).is_empty());
        assert!(is_effectively_empty(&b));
    }

    #[test]
    fn insert_find_remove() {
        let mut b = fresh();
        assert!(insert(&mut b, "hello", 42, FileType::Regular));
        assert_eq!(find(&b, "hello"), Some((42, 1)));
        assert_eq!(find(&b, "world"), None);
        assert_eq!(remove(&mut b, "hello"), Some(42));
        assert_eq!(find(&b, "hello"), None);
        assert!(entries(&b).is_empty());
    }

    #[test]
    fn many_entries_then_enumerate() {
        let mut b = fresh();
        for i in 0..100 {
            assert!(insert(&mut b, &format!("f{i}"), i + 1, FileType::Regular));
        }
        let es = entries(&b);
        assert_eq!(es.len(), 100);
        assert_eq!(es[0].name, "f0");
        assert_eq!(es[99].ino, 100);
    }

    #[test]
    fn block_fills_up() {
        let mut b = fresh();
        let mut n = 0;
        while insert(
            &mut b,
            &format!("some_longer_name_{n:05}"),
            n + 1,
            FileType::Regular,
        ) {
            n += 1;
        }
        // 28-byte records in 4096 bytes → about 146 entries.
        assert!(n > 100, "{n}");
        assert_eq!(entries(&b).len(), n as usize);
    }

    #[test]
    fn remove_first_then_reuse_slot() {
        let mut b = fresh();
        insert(&mut b, "a", 1, FileType::Regular);
        insert(&mut b, "b", 2, FileType::Regular);
        assert_eq!(remove(&mut b, "a"), Some(1));
        // The freed head slot is reusable.
        assert!(insert(&mut b, "c", 3, FileType::Directory));
        assert_eq!(find(&b, "c"), Some((3, 2)));
        assert_eq!(find(&b, "b"), Some((2, 1)));
    }

    #[test]
    fn remove_middle_merges_into_predecessor() {
        let mut b = fresh();
        insert(&mut b, "a", 1, FileType::Regular);
        insert(&mut b, "b", 2, FileType::Regular);
        insert(&mut b, "c", 3, FileType::Regular);
        assert_eq!(remove(&mut b, "b"), Some(2));
        let names: Vec<_> = entries(&b).into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "c"]);
        // The merged space is reusable for a long name.
        assert!(insert(&mut b, "bbbbbbbb", 4, FileType::Regular));
    }

    #[test]
    fn replace_swaps_target() {
        let mut b = fresh();
        insert(&mut b, "x", 7, FileType::Regular);
        assert_eq!(replace(&mut b, "x", 9, FileType::Directory), Some(7));
        assert_eq!(find(&b, "x"), Some((9, 2)));
        assert_eq!(replace(&mut b, "y", 1, FileType::Regular), None);
    }

    #[test]
    fn dot_entries_count_as_empty() {
        let mut b = fresh();
        insert(&mut b, ".", 5, FileType::Directory);
        insert(&mut b, "..", 2, FileType::Directory);
        assert!(is_effectively_empty(&b));
        insert(&mut b, "f", 9, FileType::Regular);
        assert!(!is_effectively_empty(&b));
    }

    #[test]
    fn name_validation() {
        assert!(check_name("ok").is_ok());
        assert!(check_name("").is_err());
        assert!(check_name("a/b").is_err());
        assert!(check_name("a\0b").is_err());
        assert!(check_name(&"x".repeat(256)).is_err());
        assert!(check_name(&"x".repeat(255)).is_ok());
    }

    #[test]
    fn corrupt_chain_does_not_loop() {
        let mut b = fresh();
        insert(&mut b, "a", 1, FileType::Regular);
        b[4..6].copy_from_slice(&3u16.to_le_bytes()); // rec_len < header
        let _ = entries(&b);
        let _ = find(&b, "a");
        let _ = remove(&mut b, "a");
    }
}
