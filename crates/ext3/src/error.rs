//! File-system error type.

use std::fmt;

/// Errors returned by the ext3 implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component or inode not found.
    NotFound,
    /// Name already exists in the directory.
    Exists,
    /// Operation requires a directory but the inode is not one.
    NotADirectory,
    /// Operation requires a non-directory (e.g. `unlink` on a dir).
    IsADirectory,
    /// Directory not empty (rmdir).
    NotEmpty,
    /// No free inodes or blocks.
    NoSpace,
    /// Name too long or contains `/` or NUL.
    InvalidName,
    /// Offset/length outside representable file range.
    InvalidArgument,
    /// Too many hard links.
    TooManyLinks,
    /// Not a symlink (readlink).
    NotASymlink,
    /// I/O error from the block layer.
    Io(String),
    /// On-disk structures are corrupt (bad magic, bad journal, ...).
    Corrupt(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::InvalidName => write!(f, "invalid file name"),
            FsError::InvalidArgument => write!(f, "invalid argument"),
            FsError::TooManyLinks => write!(f, "too many links"),
            FsError::NotASymlink => write!(f, "not a symbolic link"),
            FsError::Io(msg) => write!(f, "i/o error: {msg}"),
            FsError::Corrupt(what) => write!(f, "filesystem corrupt: {what}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<blockdev::BlockError> for FsError {
    fn from(e: blockdev::BlockError) -> Self {
        FsError::Io(e.to_string())
    }
}

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;
