//! The buffer cache: every block the file system touches lives here.
//!
//! This cache is the mechanism behind the paper's central observation:
//! with iSCSI the *whole* cache (data + meta-data) sits at the client,
//! so warm-cache operations touch the network only to write back
//! updates. Blocks are keyed by device block number; dirty blocks are
//! tagged as meta-data (journaled at commit) or data (flushed by the
//! pdflush-style daemon).

use blockdev::{BlockNo, BLOCK_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// Dirty state of a cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyKind {
    /// In sync with the device.
    Clean,
    /// Modified meta-data: owned by the running journal transaction.
    Meta,
    /// Modified file data: owned by the write-back daemon.
    Data,
}

#[derive(Debug)]
struct Buf {
    data: Box<[u8; BLOCK_SIZE]>,
    dirty: DirtyKind,
    /// Reference bit for CLOCK second-chance eviction.
    referenced: bool,
}

/// A fixed-capacity block cache with CLOCK (second-chance) eviction of
/// clean blocks — O(1) amortized, unlike a strict LRU scan, which
/// matters for the gigabyte-scale database workloads.
///
/// Dirty blocks are never evicted — the file system must clean them
/// first (journal commit or data write-back), mirroring how a real
/// kernel pins dirty buffers.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: BTreeMap<BlockNo, Buf>,
    /// CLOCK ring of candidate victims (may contain stale keys).
    ring: std::collections::VecDeque<BlockNo>,
    /// Blocks currently dirty with [`DirtyKind::Data`], kept sorted so
    /// the write-back path can merge runs without re-sorting the whole
    /// cache (hot under throttling).
    dirty_data: BTreeSet<BlockNo>,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates a cache holding up to `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            capacity: capacity.max(8),
            map: BTreeMap::new(),
            ring: std::collections::VecDeque::new(),
            dirty_data: BTreeSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up a block, counting a hit or miss.
    pub fn get(&mut self, bno: BlockNo) -> Option<&[u8; BLOCK_SIZE]> {
        match self.map.get_mut(&bno) {
            Some(b) => {
                self.hits += 1;
                b.referenced = true;
                Some(&*b.data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True if the block is resident (no hit/miss accounting).
    pub fn contains(&self, bno: BlockNo) -> bool {
        self.map.contains_key(&bno)
    }

    /// Inserts a block image read from the device (clean).
    pub fn insert_clean(&mut self, bno: BlockNo, data: &[u8]) {
        self.insert(bno, data, DirtyKind::Clean);
    }

    /// Inserts or overwrites a block with the given dirty state.
    pub fn insert(&mut self, bno: BlockNo, data: &[u8], dirty: DirtyKind) {
        match dirty {
            DirtyKind::Data => {
                self.dirty_data.insert(bno);
            }
            _ => {
                self.dirty_data.remove(&bno);
            }
        }
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        let mut boxed = Box::new([0u8; BLOCK_SIZE]);
        boxed.copy_from_slice(data);
        // The reference bit starts clear: a block earns its second
        // chance by being *used* after insertion, as in classic CLOCK.
        if self
            .map
            .insert(
                bno,
                Buf {
                    data: boxed,
                    dirty,
                    referenced: false,
                },
            )
            .is_none()
        {
            self.ring.push_back(bno);
        }
    }

    /// Mutates a resident block in place and raises its dirty state to
    /// at least `kind`. Returns `false` if the block is not resident.
    pub fn modify(
        &mut self,
        bno: BlockNo,
        kind: DirtyKind,
        f: impl FnOnce(&mut [u8; BLOCK_SIZE]),
    ) -> bool {
        match self.map.get_mut(&bno) {
            Some(b) => {
                f(&mut b.data);
                b.referenced = true;
                if b.dirty == DirtyKind::Clean {
                    b.dirty = kind;
                } else if b.dirty == DirtyKind::Data && kind == DirtyKind::Meta {
                    b.dirty = DirtyKind::Meta;
                }
                if b.dirty == DirtyKind::Data {
                    self.dirty_data.insert(bno);
                } else {
                    self.dirty_data.remove(&bno);
                }
                true
            }
            None => false,
        }
    }

    /// Dirty state of a block (`Clean` if absent).
    pub fn dirty_kind(&self, bno: BlockNo) -> DirtyKind {
        self.map.get(&bno).map_or(DirtyKind::Clean, |b| b.dirty)
    }

    /// Marks a block clean after write-back (no-op if absent).
    pub fn mark_clean(&mut self, bno: BlockNo) {
        if let Some(b) = self.map.get_mut(&bno) {
            b.dirty = DirtyKind::Clean;
            self.dirty_data.remove(&bno);
        }
    }

    /// Sorted list of blocks dirty with the given kind. `Data` is
    /// served from the maintained index in O(n of dirty); other kinds
    /// scan the map.
    pub fn dirty_blocks(&self, kind: DirtyKind) -> Vec<BlockNo> {
        if kind == DirtyKind::Data {
            return self.dirty_data.iter().copied().collect();
        }
        // BTreeMap iteration is already in block order.
        self.map
            .iter()
            .filter(|(_, b)| b.dirty == kind)
            .map(|(&k, _)| k)
            .collect()
    }

    /// The first `limit` dirty-data blocks, in block order (the
    /// write-back path's working set).
    pub fn dirty_data_prefix(&self, limit: usize) -> Vec<BlockNo> {
        self.dirty_data.iter().copied().take(limit).collect()
    }

    /// Count of dirty blocks of the given kind.
    pub fn dirty_count(&self, kind: DirtyKind) -> usize {
        if kind == DirtyKind::Data {
            return self.dirty_data.len();
        }
        self.map.values().filter(|b| b.dirty == kind).count()
    }

    /// A copy of the block's bytes (for journal commit images and
    /// write-back), without touching LRU state.
    pub fn peek(&self, bno: BlockNo) -> Option<[u8; BLOCK_SIZE]> {
        self.map.get(&bno).map(|b| *b.data)
    }

    /// Evicts clean blocks (CLOCK second-chance order) until the cache
    /// fits its capacity. Returns how many were evicted. Dirty blocks
    /// are pinned, so the cache may remain over capacity until the
    /// owner cleans them.
    pub fn shrink_to_capacity(&mut self) -> usize {
        let mut evicted = 0;
        // Bound the sweep so an all-dirty/all-referenced cache cannot
        // loop forever: two full passes clear every reference bit.
        let mut budget = self.ring.len() * 2 + 2;
        while self.map.len() > self.capacity && budget > 0 {
            budget -= 1;
            let Some(k) = self.ring.pop_front() else {
                break;
            };
            match self.map.get_mut(&k) {
                None => {} // stale ring entry: drop it
                Some(b) if b.dirty != DirtyKind::Clean => self.ring.push_back(k),
                Some(b) if b.referenced => {
                    b.referenced = false; // second chance
                    self.ring.push_back(k);
                }
                Some(_) => {
                    self.map.remove(&k);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Drops every block (crash, or unmount after flushing).
    pub fn clear(&mut self) {
        self.map.clear();
        self.ring.clear();
        self.dirty_data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = BufferCache::new(16);
        assert!(c.get(5).is_none());
        c.insert_clean(5, &blk(1));
        assert_eq!(c.get(5).unwrap()[0], 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn modify_promotes_dirty_kind() {
        let mut c = BufferCache::new(16);
        c.insert_clean(1, &blk(0));
        assert!(c.modify(1, DirtyKind::Data, |b| b[0] = 7));
        assert_eq!(c.dirty_kind(1), DirtyKind::Data);
        // Data → Meta promotes (journal owns it now).
        assert!(c.modify(1, DirtyKind::Meta, |b| b[1] = 8));
        assert_eq!(c.dirty_kind(1), DirtyKind::Meta);
        // Meta never demotes to Data.
        assert!(c.modify(1, DirtyKind::Data, |b| b[2] = 9));
        assert_eq!(c.dirty_kind(1), DirtyKind::Meta);
        assert_eq!(c.peek(1).unwrap()[..3], [7, 8, 9]);
    }

    #[test]
    fn modify_missing_block_fails() {
        let mut c = BufferCache::new(16);
        assert!(!c.modify(9, DirtyKind::Meta, |_| {}));
    }

    #[test]
    fn lru_evicts_cleanest_oldest() {
        let mut c = BufferCache::new(8);
        for i in 0..8 {
            c.insert_clean(i, &blk(i as u8));
        }
        c.get(0); // 0 is now most recent
        c.insert_clean(100, &blk(0));
        assert_eq!(c.shrink_to_capacity(), 1);
        assert!(c.contains(0), "recently used survives");
        assert!(!c.contains(1), "oldest clean is evicted");
    }

    #[test]
    fn dirty_blocks_are_pinned() {
        let mut c = BufferCache::new(8);
        for i in 0..8 {
            c.insert(i, &blk(0), DirtyKind::Data);
        }
        c.insert_clean(100, &blk(0));
        // Only the clean newcomer can go.
        assert_eq!(c.shrink_to_capacity(), 1);
        assert_eq!(c.len(), 8);
        assert_eq!(c.dirty_count(DirtyKind::Data), 8);
    }

    #[test]
    fn dirty_lists_are_sorted() {
        let mut c = BufferCache::new(16);
        for &b in &[9u64, 3, 7, 1] {
            c.insert(b, &blk(0), DirtyKind::Data);
        }
        c.insert(5, &blk(0), DirtyKind::Meta);
        assert_eq!(c.dirty_blocks(DirtyKind::Data), vec![1, 3, 7, 9]);
        assert_eq!(c.dirty_blocks(DirtyKind::Meta), vec![5]);
    }

    #[test]
    fn mark_clean_unpins() {
        let mut c = BufferCache::new(8);
        c.insert(1, &blk(0), DirtyKind::Meta);
        c.mark_clean(1);
        assert_eq!(c.dirty_kind(1), DirtyKind::Clean);
        assert_eq!(c.dirty_count(DirtyKind::Meta), 0);
    }

    #[test]
    fn clear_empties() {
        let mut c = BufferCache::new(8);
        c.insert(1, &blk(0), DirtyKind::Data);
        c.clear();
        assert!(c.is_empty());
    }
}
