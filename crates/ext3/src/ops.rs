//! File operations: lookup, create/unlink, mkdir/rmdir, link/symlink,
//! rename, read/write with read-ahead, truncate, and attributes.
//!
//! Every operation charges its device time (cache misses) and client
//! CPU time (page copies) to the simulation clock via
//! [`Ext3::with_op`](crate::Ext3), and tags modified meta-data blocks
//! into the running journal transaction — the write-back asynchrony
//! and update aggregation at the heart of the paper's iSCSI results.

use crate::cache::DirtyKind;
use crate::dir;
use crate::error::{FsError, FsResult};
use crate::fs::*;
use crate::layout::*;
use blockdev::{BlockNo, BLOCK_SIZE};

pub use crate::dir::DirEntry;

const BS: u64 = BLOCK_SIZE as u64;
const PPB: u64 = PTRS_PER_BLOCK as u64;

impl crate::Ext3 {
    /// Finds `name` in directory `dir`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent, [`FsError::NotADirectory`] if
    /// `dir` is not a directory.
    pub fn lookup(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.lookup");
            let (ino, _) = find_entry(inner, st, dir, name)?;
            Ok(ino)
        })
    }

    /// Returns the attributes of `ino`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the inode is free.
    pub fn getattr(&self, ino: Ino) -> FsResult<Attr> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.getattr");
            let inode = live_inode(inner, st, ino)?;
            attr_of(ino, &inode)
        })
    }

    /// Applies attribute changes; a `size` change truncates or
    /// extends (sparsely) the file.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] when truncating a directory.
    pub fn setattr(&self, ino: Ino, set: SetAttr) -> FsResult<Attr> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.setattr");
            let mut inode = live_inode(inner, st, ino)?;
            if let Some(size) = set.size {
                if inode.file_type()? == FileType::Directory {
                    return Err(FsError::IsADirectory);
                }
                truncate_inode(inner, st, &mut inode, size)?;
            }
            if let Some(p) = set.perm {
                inode.mode = (inode.mode & 0o170000) | (p & 0o7777);
            }
            if let Some(u) = set.uid {
                inode.uid = u;
            }
            if let Some(g) = set.gid {
                inode.gid = g;
            }
            if let Some(a) = set.atime {
                inode.atime = a;
            }
            if let Some(m) = set.mtime {
                inode.mtime = m;
            }
            inode.ctime = inner.now_ns();
            write_inode(inner, st, ino, &inode)?;
            attr_of(ino, &inode)
        })
    }

    /// Creates a regular file. Fails with [`FsError::Exists`] if the
    /// name is taken.
    pub fn create(&self, dir: Ino, name: &str, perm: u16) -> FsResult<Ino> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.create");
            dir::check_name(name)?;
            must_not_exist(inner, st, dir, name)?;
            let ino = alloc_inode(inner, st, group_of_ino(dir))?;
            let inode = Inode::new(FileType::Regular, perm, inner.now_ns());
            write_inode(inner, st, ino, &inode)?;
            add_entry(inner, st, dir, name, ino, FileType::Regular)?;
            Ok(ino)
        })
    }

    /// Creates a directory (with `.` and `..`).
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`], [`FsError::NoSpace`], or
    /// [`FsError::TooManyLinks`] if the parent is at `LINK_MAX`.
    pub fn mkdir(&self, dir: Ino, name: &str, perm: u16) -> FsResult<Ino> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.mkdir");
            dir::check_name(name)?;
            must_not_exist(inner, st, dir, name)?;
            let parent = live_inode(inner, st, dir)?;
            if parent.links >= LINK_MAX {
                return Err(FsError::TooManyLinks);
            }
            let ino = alloc_dir_inode(inner, st, dir)?;
            let blk = alloc_block(inner, st, group_of_ino(ino))?;
            let mut img = vec![0u8; BLOCK_SIZE];
            dir::init_block(&mut img);
            dir::insert(&mut img, ".", ino, FileType::Directory);
            dir::insert(&mut img, "..", dir, FileType::Directory);
            binstall(inner, st, blk, &img, DirtyKind::Meta);
            let mut inode = Inode::new(FileType::Directory, perm, inner.now_ns());
            inode.links = 2;
            inode.size = BS;
            inode.nblocks = 1;
            inode.block[0] = blk as u32;
            write_inode(inner, st, ino, &inode)?;
            add_entry(inner, st, dir, name, ino, FileType::Directory)?;
            // Reload the parent: add_entry may have grown the directory
            // by a block, and writing back the copy loaded above would
            // clobber the new block pointer and size (lost every 204th
            // entry before large-directory topologies exposed it).
            let mut parent = live_inode(inner, st, dir)?;
            parent.links += 1;
            parent.mtime = inner.now_ns();
            write_inode(inner, st, dir, &parent)?;
            Ok(ino)
        })
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] if it still holds entries,
    /// [`FsError::NotADirectory`] if the name is not a directory.
    pub fn rmdir(&self, dir: Ino, name: &str) -> FsResult<()> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.rmdir");
            let (ino, _) = find_entry(inner, st, dir, name)?;
            let inode = live_inode(inner, st, ino)?;
            if inode.file_type()? != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            if !dir_is_empty(inner, st, &inode)? {
                return Err(FsError::NotEmpty);
            }
            remove_entry(inner, st, dir, name)?;
            // Free the directory's blocks and inode.
            let mut doomed = inode.clone();
            truncate_dir_blocks(inner, st, &mut doomed)?;
            free_inode(inner, st, ino)?;
            let mut parent = live_inode(inner, st, dir)?;
            parent.links -= 1;
            parent.mtime = inner.now_ns();
            write_inode(inner, st, dir, &parent)?;
            Ok(())
        })
    }

    /// Removes a non-directory name; frees the inode when its last
    /// link goes away.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories.
    pub fn unlink(&self, dir: Ino, name: &str) -> FsResult<()> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.unlink");
            let (ino, _) = find_entry(inner, st, dir, name)?;
            let mut inode = live_inode(inner, st, ino)?;
            if inode.file_type()? == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            remove_entry(inner, st, dir, name)?;
            inode.links -= 1;
            if inode.links == 0 {
                if inode.file_type()? == FileType::Regular {
                    truncate_inode(inner, st, &mut inode, 0)?;
                }
                readahead_forget(st, ino);
                free_inode(inner, st, ino)?;
            } else {
                inode.ctime = inner.now_ns();
                write_inode(inner, st, ino, &inode)?;
            }
            Ok(())
        })
    }

    /// Creates a hard link `dir/name` to `target`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] (no directory hard links),
    /// [`FsError::TooManyLinks`], [`FsError::Exists`].
    pub fn link(&self, dir: Ino, name: &str, target: Ino) -> FsResult<()> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.link");
            dir::check_name(name)?;
            let mut inode = live_inode(inner, st, target)?;
            let ftype = inode.file_type()?;
            if ftype == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            if inode.links >= LINK_MAX {
                return Err(FsError::TooManyLinks);
            }
            must_not_exist(inner, st, dir, name)?;
            add_entry(inner, st, dir, name, target, ftype)?;
            inode.links += 1;
            inode.ctime = inner.now_ns();
            write_inode(inner, st, target, &inode)
        })
    }

    /// Creates a symbolic link with the given target text.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`], [`FsError::InvalidArgument`] for an empty
    /// or over-long target.
    pub fn symlink(&self, dir: Ino, name: &str, target: &str) -> FsResult<Ino> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.symlink");
            dir::check_name(name)?;
            if target.is_empty() || target.len() >= BLOCK_SIZE {
                return Err(FsError::InvalidArgument);
            }
            must_not_exist(inner, st, dir, name)?;
            let ino = alloc_inode(inner, st, group_of_ino(dir))?;
            let mut inode = Inode::new(FileType::Symlink, 0o777, inner.now_ns());
            if target.len() <= FAST_SYMLINK_MAX {
                inode.set_fast_symlink_target(target);
            } else {
                let blk = alloc_block(inner, st, group_of_ino(ino))?;
                let mut img = vec![0u8; BLOCK_SIZE];
                img[..target.len()].copy_from_slice(target.as_bytes());
                binstall(inner, st, blk, &img, DirtyKind::Meta);
                inode.block[0] = blk as u32;
                inode.size = target.len() as u64;
                inode.nblocks = 1;
            }
            write_inode(inner, st, ino, &inode)?;
            add_entry(inner, st, dir, name, ino, FileType::Symlink)?;
            Ok(ino)
        })
    }

    /// Reads a symlink's target (updates atime, as Linux does).
    ///
    /// # Errors
    ///
    /// [`FsError::NotASymlink`] for other types.
    pub fn readlink(&self, ino: Ino) -> FsResult<String> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.readlink");
            let mut inode = live_inode(inner, st, ino)?;
            if inode.file_type()? != FileType::Symlink {
                return Err(FsError::NotASymlink);
            }
            let target = if inode.nblocks == 0 {
                inode.fast_symlink_target()?
            } else {
                let img = bread(inner, st, inode.block[0] as BlockNo)?;
                String::from_utf8_lossy(&img[..inode.size as usize]).into_owned()
            };
            if inner.opts.atime {
                inode.atime = inner.now_ns();
                write_inode(inner, st, ino, &inode)?;
            }
            Ok(target)
        })
    }

    /// Renames `sdir/sname` to `ddir/dname`, replacing a compatible
    /// existing destination (POSIX semantics).
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] when replacing a non-empty directory;
    /// [`FsError::NotADirectory`]/[`FsError::IsADirectory`] on type
    /// mismatches.
    pub fn rename(&self, sdir: Ino, sname: &str, ddir: Ino, dname: &str) -> FsResult<()> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.rename");
            dir::check_name(dname)?;
            let (sino, _) = find_entry(inner, st, sdir, sname)?;
            let sinode = live_inode(inner, st, sino)?;
            let sftype = sinode.file_type()?;
            // A directory must not move into its own subtree (the
            // classic rename cycle check).
            if sftype == FileType::Directory && sdir != ddir {
                let mut cur = ddir;
                loop {
                    if cur == sino {
                        return Err(FsError::InvalidArgument);
                    }
                    if cur == ROOT_INO {
                        break;
                    }
                    let (parent, _) = find_entry(inner, st, cur, "..")?;
                    if parent == cur {
                        break;
                    }
                    cur = parent;
                }
            }
            // Deal with an existing destination.
            if let Ok((dino, _)) = find_entry(inner, st, ddir, dname) {
                if dino == sino {
                    return Ok(()); // same object: no-op
                }
                let dinode = live_inode(inner, st, dino)?;
                match (sftype, dinode.file_type()?) {
                    (FileType::Directory, FileType::Directory) => {
                        if !dir_is_empty(inner, st, &dinode)? {
                            return Err(FsError::NotEmpty);
                        }
                        remove_entry(inner, st, ddir, dname)?;
                        let mut doomed = dinode.clone();
                        truncate_dir_blocks(inner, st, &mut doomed)?;
                        free_inode(inner, st, dino)?;
                        let mut dp = live_inode(inner, st, ddir)?;
                        dp.links -= 1;
                        write_inode(inner, st, ddir, &dp)?;
                    }
                    (FileType::Directory, _) => return Err(FsError::NotADirectory),
                    (_, FileType::Directory) => return Err(FsError::IsADirectory),
                    _ => {
                        remove_entry(inner, st, ddir, dname)?;
                        let mut di = dinode.clone();
                        di.links -= 1;
                        if di.links == 0 {
                            if di.file_type()? == FileType::Regular {
                                truncate_inode(inner, st, &mut di, 0)?;
                            }
                            free_inode(inner, st, dino)?;
                        } else {
                            write_inode(inner, st, dino, &di)?;
                        }
                    }
                }
            }
            remove_entry(inner, st, sdir, sname)?;
            add_entry(inner, st, ddir, dname, sino, sftype)?;
            // A moved directory's ".." must point at its new parent.
            if sftype == FileType::Directory && sdir != ddir {
                let blk = sinode.block[0] as BlockNo;
                bmodify(inner, st, blk, DirtyKind::Meta, |b| {
                    dir::replace(b, "..", ddir, FileType::Directory);
                })?;
                let mut sp = live_inode(inner, st, sdir)?;
                sp.links -= 1;
                write_inode(inner, st, sdir, &sp)?;
                let mut dp = live_inode(inner, st, ddir)?;
                dp.links += 1;
                write_inode(inner, st, ddir, &dp)?;
            }
            Ok(())
        })
    }

    /// Lists a directory (excluding unused slots; `.`/`..` included).
    /// Updates the directory's atime.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`].
    pub fn readdir(&self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.readdir");
            let mut inode = live_inode(inner, st, dir)?;
            if inode.file_type()? != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            let mut out = Vec::new();
            for fb in 0..inode.size / BS {
                if let Some(bno) = bmap(inner, st, &inode, fb)? {
                    let img = bread(inner, st, bno)?;
                    out.extend(dir::entries(&img));
                }
            }
            if inner.opts.atime {
                inode.atime = inner.now_ns();
                write_inode(inner, st, dir, &inode)?;
            }
            Ok(out)
        })
    }

    /// Reads up to `len` bytes at `off`; short reads happen at EOF.
    /// Sequential access triggers read-ahead; atime is updated.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories.
    pub fn read(&self, ino: Ino, off: u64, len: usize) -> FsResult<Vec<u8>> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.read");
            let mut inode = live_inode(inner, st, ino)?;
            if inode.file_type()? == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            let end = (off + len as u64).min(inode.size);
            if off >= end {
                return Ok(Vec::new());
            }
            let mut out = Vec::with_capacity((end - off) as usize);
            let first = off / BS;
            let last = (end - 1) / BS;
            prefetch_range(inner, st, ino, &inode, first, last)?;
            for fb in first..=last {
                let within_start = if fb == first { (off % BS) as usize } else { 0 };
                let within_end = if fb == last {
                    ((end - 1) % BS) as usize + 1
                } else {
                    BLOCK_SIZE
                };
                match bmap(inner, st, &inode, fb)? {
                    Some(bno) => {
                        let img = bread(inner, st, bno)?;
                        out.extend_from_slice(&img[within_start..within_end]);
                    }
                    None => out.extend(std::iter::repeat_n(0, within_end - within_start)),
                }
                inner.charge_cpu(inner.opts.mem_copy_cost);
            }
            readahead_advance(st, ino, last + 1);
            if inner.opts.atime {
                inode.atime = inner.now_ns();
                write_inode(inner, st, ino, &inode)?;
            }
            Ok(out)
        })
    }

    /// Writes `data` at `off`, extending the file as needed. Data
    /// pages go dirty in the cache; the write returns as soon as the
    /// pages are dirtied (write-back caching), except when the dirty
    /// limit throttles the writer.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`], [`FsError::NoSpace`].
    pub fn write(&self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        self.with_op(|inner, st| {
            inner.sim.counters().incr("ext3.op.write");
            let mut inode = live_inode(inner, st, ino)?;
            if inode.file_type()? == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            if data.is_empty() {
                return Ok(0);
            }
            let end = off + data.len() as u64;
            let first = off / BS;
            let last = (end - 1) / BS;
            let mut written = 0usize;
            for fb in first..=last {
                let within_start = if fb == first { (off % BS) as usize } else { 0 };
                let within_end = if fb == last {
                    ((end - 1) % BS) as usize + 1
                } else {
                    BLOCK_SIZE
                };
                let chunk = &data[written..written + (within_end - within_start)];
                let partial = within_start != 0 || within_end != BLOCK_SIZE;
                let existing = bmap(inner, st, &inode, fb)?;
                let bno = match existing {
                    Some(b) => {
                        if partial && !st.cache.contains(b) {
                            bread(inner, st, b)?; // read-modify-write
                        }
                        b
                    }
                    None => bmap_alloc(inner, st, ino, &mut inode, fb)?,
                };
                if st.cache.contains(bno) {
                    st.cache.modify(bno, DirtyKind::Data, |b| {
                        b[within_start..within_end].copy_from_slice(chunk);
                    });
                } else {
                    let mut img = [0u8; BLOCK_SIZE];
                    img[within_start..within_end].copy_from_slice(chunk);
                    st.cache.insert(bno, &img, DirtyKind::Data);
                }
                written += chunk.len();
                inner.charge_cpu(inner.opts.mem_copy_cost);
            }
            if end > inode.size {
                inode.size = end;
            }
            inode.mtime = inner.now_ns();
            inode.ctime = inode.mtime;
            write_inode(inner, st, ino, &inode)?;
            maybe_throttle(inner, st);
            Ok(written)
        })
    }

    /// Flushes this file's dirty data and the journal to stable
    /// storage (foreground). Only the named inode's pages are written,
    /// as in a real `fsync`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn fsync(&self, ino: Ino) -> FsResult<()> {
        self.with_op(|inner, st| {
            commit_journal(inner, st);
            // Collect this inode's dirty data blocks.
            let inode = live_inode(inner, st, ino)?;
            let nblocks = inode.size.div_ceil(BS);
            let mut dirty = Vec::new();
            for fb in 0..nblocks {
                if let Some(bno) = bmap(inner, st, &inode, fb)? {
                    if st.cache.dirty_kind(bno) == DirtyKind::Data {
                        dirty.push(bno);
                    }
                }
            }
            dirty.sort_unstable();
            for (start, len) in merge_runs(dirty, inner.opts.max_write_cmd_blocks) {
                let mut buf = Vec::with_capacity(len as usize * BLOCK_SIZE);
                for i in 0..len as u64 {
                    buf.extend_from_slice(&st.cache.peek(start + i).expect("dirty resident"));
                }
                let cost = inner.dev.write(start, &buf)?;
                inner.charge(cost);
                for i in 0..len as u64 {
                    st.cache.mark_clean(start + i);
                }
            }
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------
// Internal helpers
// ---------------------------------------------------------------------

fn attr_of(ino: Ino, inode: &Inode) -> FsResult<Attr> {
    Ok(Attr {
        ino,
        ftype: inode.file_type()?,
        perm: inode.mode & 0o7777,
        links: inode.links,
        uid: inode.uid,
        gid: inode.gid,
        size: inode.size,
        atime: inode.atime,
        mtime: inode.mtime,
        ctime: inode.ctime,
        nblocks: inode.nblocks,
    })
}

fn live_inode(inner: &Inner, st: &mut State, ino: Ino) -> FsResult<Inode> {
    let inode = read_inode(inner, st, ino)?;
    if inode.is_free() {
        return Err(FsError::NotFound);
    }
    Ok(inode)
}

fn must_not_exist(inner: &Inner, st: &mut State, dir: Ino, name: &str) -> FsResult<()> {
    match find_entry(inner, st, dir, name) {
        Ok(_) => Err(FsError::Exists),
        Err(FsError::NotFound) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Locates `name` in `dir`: `(inode, block holding the entry)`.
fn find_entry(inner: &Inner, st: &mut State, dir: Ino, name: &str) -> FsResult<(Ino, BlockNo)> {
    let inode = live_inode(inner, st, dir)?;
    if inode.file_type()? != FileType::Directory {
        return Err(FsError::NotADirectory);
    }
    for fb in 0..inode.size / BS {
        if let Some(bno) = bmap(inner, st, &inode, fb)? {
            let img = bread(inner, st, bno)?;
            if let Some((ino, _)) = dir::find(&img, name) {
                return Ok((ino, bno));
            }
        }
    }
    Err(FsError::NotFound)
}

fn add_entry(
    inner: &Inner,
    st: &mut State,
    dir: Ino,
    name: &str,
    ino: Ino,
    ftype: FileType,
) -> FsResult<()> {
    let mut dnode = live_inode(inner, st, dir)?;
    if dnode.file_type()? != FileType::Directory {
        return Err(FsError::NotADirectory);
    }
    for fb in 0..dnode.size / BS {
        if let Some(bno) = bmap(inner, st, &dnode, fb)? {
            let mut inserted = false;
            bmodify(inner, st, bno, DirtyKind::Meta, |b| {
                inserted = dir::insert(b, name, ino, ftype);
            })?;
            if inserted {
                let mut dnode = live_inode(inner, st, dir)?;
                dnode.mtime = inner.now_ns();
                write_inode(inner, st, dir, &dnode)?;
                return Ok(());
            }
        }
    }
    // All blocks full: grow the directory.
    let fb = dnode.size / BS;
    let bno = bmap_alloc(inner, st, dir, &mut dnode, fb)?;
    let mut img = vec![0u8; BLOCK_SIZE];
    dir::init_block(&mut img);
    let ok = dir::insert(&mut img, name, ino, ftype);
    debug_assert!(ok);
    binstall(inner, st, bno, &img, DirtyKind::Meta);
    dnode.size = (fb + 1) * BS;
    dnode.mtime = inner.now_ns();
    write_inode(inner, st, dir, &dnode)
}

fn remove_entry(inner: &Inner, st: &mut State, dir: Ino, name: &str) -> FsResult<Ino> {
    let (_, bno) = find_entry(inner, st, dir, name)?;
    let mut removed = None;
    bmodify(inner, st, bno, DirtyKind::Meta, |b| {
        removed = dir::remove(b, name);
    })?;
    let ino = removed.ok_or(FsError::NotFound)?;
    let mut dnode = live_inode(inner, st, dir)?;
    dnode.mtime = inner.now_ns();
    write_inode(inner, st, dir, &dnode)?;
    Ok(ino)
}

fn dir_is_empty(inner: &Inner, st: &mut State, inode: &Inode) -> FsResult<bool> {
    for fb in 0..inode.size / BS {
        if let Some(bno) = bmap(inner, st, inode, fb)? {
            let img = bread(inner, st, bno)?;
            if !dir::is_effectively_empty(&img) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Maps a file block to a device block (`None` = hole).
pub(crate) fn bmap(
    inner: &Inner,
    st: &mut State,
    inode: &Inode,
    fblock: u64,
) -> FsResult<Option<BlockNo>> {
    let nd = N_DIRECT as u64;
    if fblock < nd {
        let p = inode.block[fblock as usize];
        return Ok((p != 0).then_some(p as BlockNo));
    }
    let fblock = fblock - nd;
    if fblock < PPB {
        let ind = inode.block[N_DIRECT];
        if ind == 0 {
            return Ok(None);
        }
        let img = bread(inner, st, ind as BlockNo)?;
        let p = read_ptr(&img, fblock as usize);
        return Ok((p != 0).then_some(p as BlockNo));
    }
    let fblock = fblock - PPB;
    if fblock < PPB * PPB {
        let dind = inode.block[N_DIRECT + 1];
        if dind == 0 {
            return Ok(None);
        }
        let img = bread(inner, st, dind as BlockNo)?;
        let i1 = read_ptr(&img, (fblock / PPB) as usize);
        if i1 == 0 {
            return Ok(None);
        }
        let img = bread(inner, st, i1 as BlockNo)?;
        let p = read_ptr(&img, (fblock % PPB) as usize);
        return Ok((p != 0).then_some(p as BlockNo));
    }
    Err(FsError::InvalidArgument)
}

/// Maps a file block, allocating data and pointer blocks as needed.
fn bmap_alloc(
    inner: &Inner,
    st: &mut State,
    ino: Ino,
    inode: &mut Inode,
    fblock: u64,
) -> FsResult<BlockNo> {
    let g = group_of_ino(ino);
    let nd = N_DIRECT as u64;
    if fblock < nd {
        let p = inode.block[fblock as usize];
        if p != 0 {
            return Ok(p as BlockNo);
        }
        let b = alloc_block(inner, st, g)?;
        inode.block[fblock as usize] = b as u32;
        inode.nblocks += 1;
        write_inode(inner, st, ino, inode)?;
        return Ok(b);
    }
    let rel = fblock - nd;
    if rel < PPB {
        if inode.block[N_DIRECT] == 0 {
            let b = alloc_block(inner, st, g)?;
            binstall(inner, st, b, &vec![0u8; BLOCK_SIZE], DirtyKind::Meta);
            inode.block[N_DIRECT] = b as u32;
            inode.nblocks += 1;
            write_inode(inner, st, ino, inode)?;
        }
        let ind = inode.block[N_DIRECT] as BlockNo;
        return alloc_in_ptr_block(inner, st, ino, inode, ind, rel as usize, g);
    }
    let rel = rel - PPB;
    if rel < PPB * PPB {
        if inode.block[N_DIRECT + 1] == 0 {
            let b = alloc_block(inner, st, g)?;
            binstall(inner, st, b, &vec![0u8; BLOCK_SIZE], DirtyKind::Meta);
            inode.block[N_DIRECT + 1] = b as u32;
            inode.nblocks += 1;
            write_inode(inner, st, ino, inode)?;
        }
        let dind = inode.block[N_DIRECT + 1] as BlockNo;
        let i1_idx = (rel / PPB) as usize;
        let img = bread(inner, st, dind)?;
        let mut i1 = read_ptr(&img, i1_idx) as BlockNo;
        if i1 == 0 {
            i1 = alloc_block(inner, st, g)?;
            binstall(inner, st, i1, &vec![0u8; BLOCK_SIZE], DirtyKind::Meta);
            let val = i1 as u32;
            bmodify(inner, st, dind, DirtyKind::Meta, |b| {
                write_ptr(b, i1_idx, val);
            })?;
            inode.nblocks += 1;
            write_inode(inner, st, ino, inode)?;
        }
        return alloc_in_ptr_block(inner, st, ino, inode, i1, (rel % PPB) as usize, g);
    }
    Err(FsError::InvalidArgument)
}

fn alloc_in_ptr_block(
    inner: &Inner,
    st: &mut State,
    ino: Ino,
    inode: &mut Inode,
    ptr_block: BlockNo,
    idx: usize,
    g: u32,
) -> FsResult<BlockNo> {
    let img = bread(inner, st, ptr_block)?;
    let p = read_ptr(&img, idx);
    if p != 0 {
        return Ok(p as BlockNo);
    }
    let b = alloc_block(inner, st, g)?;
    let val = b as u32;
    bmodify(inner, st, ptr_block, DirtyKind::Meta, |blk| {
        write_ptr(blk, idx, val);
    })?;
    inode.nblocks += 1;
    write_inode(inner, st, ino, inode)?;
    Ok(b)
}

fn read_ptr(img: &[u8; BLOCK_SIZE], idx: usize) -> u32 {
    u32::from_le_bytes(img[idx * 4..idx * 4 + 4].try_into().unwrap())
}

fn write_ptr(img: &mut [u8; BLOCK_SIZE], idx: usize, val: u32) {
    img[idx * 4..idx * 4 + 4].copy_from_slice(&val.to_le_bytes());
}

/// Ensures the device blocks behind file blocks `[first, last]` are
/// cached, plus a read-ahead window beyond `last` when the stream is
/// sequential. Uncached contiguous device runs are fetched as single
/// commands — this merging is what keeps small-file cold reads at a
/// couple of iSCSI messages in the paper's Figure 5.
fn prefetch_range(
    inner: &Inner,
    st: &mut State,
    ino: Ino,
    inode: &Inode,
    first: u64,
    last: u64,
) -> FsResult<()> {
    let window = readahead_window(st, ino, first, inner.opts.readahead_max) as u64;
    let file_blocks = inode.size.div_ceil(BS);
    if file_blocks == 0 {
        return Ok(());
    }
    let fetch_last = (last + window - 1).min(file_blocks - 1);
    // The largest merged read command the block layer will build.
    let max_run = (inner.opts.readahead_max as u64).clamp(1, 64);
    let mut run: Option<(u64, u64, bool)> = None; // (device start, len, demand)
    let mut fb = first;
    while fb <= fetch_last {
        let demand = fb <= last;
        let dev_block = match bmap(inner, st, inode, fb)? {
            Some(b) => b,
            None => {
                fb += 1;
                flush_run(inner, st, &mut run)?;
                continue;
            }
        };
        let resident =
            st.cache.contains(dev_block) || st.journal.pending_image(dev_block).is_some();
        if resident {
            if !st.cache.contains(dev_block) {
                bread(inner, st, dev_block)?; // promote pinned journal image
            }
            flush_run(inner, st, &mut run)?;
            fb += 1;
            continue;
        }
        match run {
            Some((start, len, d)) if start + len == dev_block && len < max_run => {
                run = Some((start, len + 1, d || demand));
            }
            Some(_) => {
                flush_run(inner, st, &mut run)?;
                run = Some((dev_block, 1, demand));
            }
            None => run = Some((dev_block, 1, demand)),
        }
        fb += 1;
    }
    flush_run(inner, st, &mut run)
}

/// Issues one merged device read for the pending run. Pure read-ahead
/// (no block of the run was demanded by the caller) is asynchronous in
/// a real kernel — tagged commands overlap application processing — so
/// only a fraction of its latency is foreground.
fn flush_run(inner: &Inner, st: &mut State, run: &mut Option<(u64, u64, bool)>) -> FsResult<()> {
    let Some((start, len, demand)) = run.take() else {
        return Ok(());
    };
    let mut buf = vec![0u8; (len as usize) * BLOCK_SIZE];
    let cost = inner.dev.read(start, len as u32, &mut buf)?;
    if demand {
        inner.charge(cost);
    } else {
        inner.charge(blockdev::IoCost::new(
            cost.time / inner.opts.prefetch_pipeline.max(1) as u64,
        ));
    }
    for i in 0..len {
        st.cache
            .insert_clean(start + i, &buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE]);
    }
    Ok(())
}

/// Frees all blocks beyond `new_size` and updates size/nblocks.
fn truncate_inode(inner: &Inner, st: &mut State, inode: &mut Inode, new_size: u64) -> FsResult<()> {
    let keep = new_size.div_ceil(BS);
    let nd = N_DIRECT as u64;
    // Zero the kept tail of a partial last block so a later extension
    // reads zeros, not stale bytes (POSIX truncate semantics).
    if new_size < inode.size && !new_size.is_multiple_of(BS) {
        if let Some(bno) = bmap(inner, st, inode, keep - 1)? {
            let from = (new_size % BS) as usize;
            bmodify(inner, st, bno, DirtyKind::Data, |b| {
                b[from..].fill(0);
            })?;
        }
    }
    // Direct blocks.
    for fb in keep..nd {
        let p = inode.block[fb as usize];
        if p != 0 {
            free_block(inner, st, p as BlockNo)?;
            inode.block[fb as usize] = 0;
            inode.nblocks -= 1;
        }
    }
    // Single indirect.
    if inode.block[N_DIRECT] != 0 {
        let ind = inode.block[N_DIRECT] as BlockNo;
        let start = keep.saturating_sub(nd).min(PPB);
        let freed_all = free_ptr_range(inner, st, ind, start as usize, inode)?;
        if keep <= nd && freed_all {
            free_block(inner, st, ind)?;
            inode.block[N_DIRECT] = 0;
            inode.nblocks -= 1;
        }
    }
    // Double indirect.
    if inode.block[N_DIRECT + 1] != 0 {
        let dind = inode.block[N_DIRECT + 1] as BlockNo;
        let base = nd + PPB;
        let img = bread(inner, st, dind)?;
        let mut any_left = false;
        for i1 in 0..PTRS_PER_BLOCK {
            let p1 = read_ptr(&img, i1);
            if p1 == 0 {
                continue;
            }
            let seg_start = base + (i1 as u64) * PPB;
            let start = keep.saturating_sub(seg_start).min(PPB);
            let freed_all = free_ptr_range(inner, st, p1 as BlockNo, start as usize, inode)?;
            if keep <= seg_start && freed_all {
                free_block(inner, st, p1 as BlockNo)?;
                inode.nblocks -= 1;
                let idx = i1;
                bmodify(inner, st, dind, DirtyKind::Meta, |b| {
                    write_ptr(b, idx, 0);
                })?;
            } else {
                any_left = true;
            }
        }
        if keep <= nd + PPB && !any_left {
            free_block(inner, st, dind)?;
            inode.block[N_DIRECT + 1] = 0;
            inode.nblocks -= 1;
        }
    }
    inode.size = new_size;
    inode.mtime = inner.now_ns();
    Ok(())
}

/// Frees pointers `[start, PPB)` of a pointer block; returns true if
/// the block ends up with no pointers at all.
fn free_ptr_range(
    inner: &Inner,
    st: &mut State,
    ptr_block: BlockNo,
    start: usize,
    inode: &mut Inode,
) -> FsResult<bool> {
    let img = bread(inner, st, ptr_block)?;
    let mut to_free = Vec::new();
    let mut any_left = false;
    for i in 0..PTRS_PER_BLOCK {
        let p = read_ptr(&img, i);
        if p == 0 {
            continue;
        }
        if i >= start {
            to_free.push((i, p));
        } else {
            any_left = true;
        }
    }
    for &(i, p) in &to_free {
        free_block(inner, st, p as BlockNo)?;
        inode.nblocks -= 1;
        bmodify(inner, st, ptr_block, DirtyKind::Meta, |b| {
            write_ptr(b, i, 0);
        })?;
    }
    Ok(!any_left)
}

/// Frees a directory's (direct-only, in practice small) block list.
fn truncate_dir_blocks(inner: &Inner, st: &mut State, inode: &mut Inode) -> FsResult<()> {
    truncate_inode(inner, st, inode, 0)
}
