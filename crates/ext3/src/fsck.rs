//! Consistency checker used by the crash-recovery property tests.
//!
//! Walks the directory tree from the root, accounting every reachable
//! inode and block, and cross-checks the allocation bitmaps and link
//! counts. After a crash plus journal replay the file system must pass
//! `fsck` — uncommitted updates may be lost (the paper's §2.3
//! persistence caveat) but never leave dangling state.

use crate::alloc;
use crate::dir;
use crate::error::{FsError, FsResult};
use crate::fs::*;
use crate::layout::*;
use crate::ops::bmap;
use blockdev::{BlockNo, BLOCK_SIZE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Human-readable inconsistencies; empty means the volume is
    /// consistent.
    pub errors: Vec<String>,
    /// Reachable inodes.
    pub inodes: u64,
    /// Blocks referenced by reachable inodes (data + pointer blocks).
    pub blocks: u64,
}

impl FsckReport {
    /// True if no inconsistencies were found.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl crate::Ext3 {
    /// Runs a full-volume consistency check.
    ///
    /// # Errors
    ///
    /// Returns an error only for I/O failures; *inconsistencies* are
    /// reported in the [`FsckReport`].
    pub fn fsck(&self) -> FsResult<FsckReport> {
        self.with_op(|inner, st| {
            let mut report = FsckReport::default();
            let mut used_inos: BTreeMap<Ino, u16> = BTreeMap::new(); // ino -> observed refs
            let mut used_blocks: BTreeSet<BlockNo> = BTreeSet::new();
            let mut queue: VecDeque<Ino> = VecDeque::new();
            queue.push_back(ROOT_INO);
            used_inos.insert(ROOT_INO, 1); // "/" has an implicit reference

            let mut subdir_counts: BTreeMap<Ino, u16> = BTreeMap::new();

            while let Some(ino) = queue.pop_front() {
                let inode = read_inode(inner, st, ino)?;
                if inode.is_free() {
                    report.errors.push(format!("referenced inode {ino} is free"));
                    continue;
                }
                report.inodes += 1;
                // Account this inode's blocks (data + pointer blocks).
                for bno in inode_blocks(inner, st, &inode)? {
                    if !used_blocks.insert(bno) {
                        report
                            .errors
                            .push(format!("block {bno} referenced more than once"));
                    }
                }
                if inode.file_type()? == FileType::Directory {
                    let mut entries = Vec::new();
                    for fb in 0..inode.size / BLOCK_SIZE as u64 {
                        if let Some(bno) = bmap(inner, st, &inode, fb)? {
                            let img = bread(inner, st, bno)?;
                            entries.extend(dir::entries(&img));
                        }
                    }
                    for e in entries {
                        if e.name == "." {
                            if e.ino != ino {
                                report.errors.push(format!("bad '.' in dir {ino}"));
                            }
                            continue;
                        }
                        if e.name == ".." {
                            continue; // verified via link counts
                        }
                        let first_ref = !used_inos.contains_key(&e.ino);
                        *used_inos.entry(e.ino).or_insert(0) += 1;
                        let child = read_inode(inner, st, e.ino)?;
                        if child.is_free() {
                            report
                                .errors
                                .push(format!("entry {} -> free inode {}", e.name, e.ino));
                            continue;
                        }
                        if child.file_type()? == FileType::Directory {
                            *subdir_counts.entry(ino).or_insert(0) += 1;
                            if first_ref {
                                queue.push_back(e.ino);
                            } else {
                                report
                                    .errors
                                    .push(format!("directory {} multiply linked", e.ino));
                            }
                        } else if first_ref {
                            // Non-directories: walk once to account
                            // their blocks.
                            queue.push_back(e.ino);
                        }
                    }
                }
            }
            report.blocks = used_blocks.len() as u64;

            // Link counts.
            for (&ino, &refs) in &used_inos {
                let inode = read_inode(inner, st, ino)?;
                if inode.is_free() {
                    continue;
                }
                let expect = match inode.file_type()? {
                    // '.'; the parent's entry (or "/" itself for the
                    // root); one '..' per subdirectory.
                    FileType::Directory => 2 + subdir_counts.get(&ino).copied().unwrap_or(0),
                    _ => refs,
                };
                if inode.links != expect {
                    report.errors.push(format!(
                        "inode {ino}: links {} but expected {expect}",
                        inode.links
                    ));
                }
            }

            // Bitmap cross-check.
            for (g, lay) in st.layouts.clone().into_iter().enumerate() {
                let bimg = bread(inner, st, lay.block_bitmap)?;
                let limit = (lay.end - lay.start) as usize;
                for i in 0..limit {
                    let bno = lay.start + i as u64;
                    let marked = alloc::test_bit(&bimg, i);
                    let is_meta = bno < lay.data_start;
                    let reachable = used_blocks.contains(&bno);
                    if marked && !is_meta && !reachable {
                        report
                            .errors
                            .push(format!("block {bno} marked used but unreachable"));
                    }
                    if !marked && (reachable || is_meta) {
                        report
                            .errors
                            .push(format!("block {bno} in use but marked free"));
                    }
                }
                // Group-descriptor free-block count must agree with
                // the bitmap.
                let gd_free = st.groups[g].free_blocks as usize;
                let bitmap_free = alloc::count_zeros(&bimg, limit);
                if gd_free != bitmap_free {
                    report.errors.push(format!(
                        "group {g}: descriptor says {gd_free} free blocks, bitmap says {bitmap_free}"
                    ));
                }
                let iimg = bread(inner, st, lay.inode_bitmap)?;
                for idx in 0..INODES_PER_GROUP as usize {
                    let ino = (g as u64 * INODES_PER_GROUP + idx as u64 + 1) as Ino;
                    let marked = alloc::test_bit(&iimg, idx);
                    let reserved = g == 0 && (idx as u32) < FIRST_FREE_INO - 1;
                    let reachable = used_inos.contains_key(&ino);
                    if marked && !reserved && !reachable && ino != ROOT_INO {
                        report
                            .errors
                            .push(format!("inode {ino} marked used but unreachable"));
                    }
                    if !marked && reachable {
                        report
                            .errors
                            .push(format!("inode {ino} in use but marked free"));
                    }
                }
            }
            Ok(report)
        })
    }
}

/// Every block an inode references: data blocks plus pointer blocks.
fn inode_blocks(inner: &Inner, st: &mut State, inode: &Inode) -> FsResult<Vec<BlockNo>> {
    let mut out = Vec::new();
    if inode.file_type()? == FileType::Symlink && inode.nblocks == 0 {
        return Ok(out); // fast symlink: no blocks
    }
    for (i, &p) in inode.block.iter().take(N_DIRECT).enumerate() {
        let _ = i;
        if p != 0 {
            out.push(p as BlockNo);
        }
    }
    if inode.block[N_DIRECT] != 0 {
        let ind = inode.block[N_DIRECT] as BlockNo;
        out.push(ind);
        out.extend(ptrs_of(inner, st, ind)?);
    }
    if inode.block[N_DIRECT + 1] != 0 {
        let dind = inode.block[N_DIRECT + 1] as BlockNo;
        out.push(dind);
        for p1 in ptrs_of(inner, st, dind)? {
            out.push(p1);
            out.extend(ptrs_of(inner, st, p1)?);
        }
    }
    Ok(out)
}

fn ptrs_of(inner: &Inner, st: &mut State, ptr_block: BlockNo) -> FsResult<Vec<BlockNo>> {
    let img = bread(inner, st, ptr_block)?;
    let mut out = Vec::new();
    for i in 0..PTRS_PER_BLOCK {
        let p = u32::from_le_bytes(img[i * 4..i * 4 + 4].try_into().unwrap());
        if p != 0 {
            out.push(p as BlockNo);
        }
    }
    Ok(out)
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ok() {
            write!(
                f,
                "clean: {} inodes, {} blocks reachable",
                self.inodes, self.blocks
            )
        } else {
            writeln!(f, "{} inconsistencies:", self.errors.len())?;
            for e in &self.errors {
                writeln!(f, "  {e}")?;
            }
            Ok(())
        }
    }
}

// Suppress an unused-import lint if FsError is only used in docs here.
#[allow(unused_imports)]
use FsError as _FsError;
