//! An ext3-like journaling file system over a simulated block device.
//!
//! This is the substrate that gives the paper's iSCSI configuration
//! its behaviour (Figure 1(b)): the file system — and therefore the
//! *entire* data and meta-data cache — lives at the client, meta-data
//! updates are asynchronous and batched by a JBD-style journal with a
//! 5-second commit interval, and dirty data is written back lazily
//! with large merged requests. The same implementation also backs the
//! NFS *server* (Figure 1(a)), where it runs on a local RAID volume.
//!
//! Highlights:
//!
//! * real on-disk structures (superblock, block groups, bitmaps,
//!   inode table, ext2-style directory blocks, indirect blocks) that
//!   survive unmount/remount on a raw [`blockdev::BlockDevice`];
//! * a buffer cache with LRU eviction and dirty pinning;
//! * a journal with descriptor/commit records, crash replay at mount,
//!   and lazy checkpointing — commits leave the client as **two**
//!   merged write transactions regardless of how many meta-data
//!   updates were aggregated (the paper's §4.2 batching effect);
//! * sequential read-ahead with run merging, write-back with dirty
//!   throttling, and atime maintenance (the source of iSCSI's
//!   warm-read messages in §4.4);
//! * an `fsck` used by property tests to prove crash consistency.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use simkit::Sim;
//! use blockdev::MemDisk;
//! use ext3::{Ext3, Options};
//!
//! let sim = Sim::new(1);
//! let disk = Rc::new(MemDisk::new("d0", 200_000));
//! let fs = Ext3::mkfs(sim, disk, Options::default())?;
//! let dir = fs.mkdir(fs.root(), "home", 0o755)?;
//! let f = fs.create(dir, "hello.txt", 0o644)?;
//! fs.write(f, 0, b"hello world")?;
//! assert_eq!(fs.read(f, 0, 5)?, b"hello");
//! # Ok::<(), ext3::FsError>(())
//! ```

mod alloc;
mod cache;
mod dir;
mod error;
mod fs;
mod fsck;
mod journal;
mod layout;
mod ops;

pub use cache::DirtyKind;
pub use dir::DirEntry;
pub use error::{FsError, FsResult};
pub use fs::{Attr, Ext3, Ino, Options, SetAttr, StatFs};
pub use fsck::FsckReport;
pub use layout::{FileType, FAST_SYMLINK_MAX, NAME_MAX, ROOT_INO};

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{BlockDevice, MemDisk};
    use simkit::{Sim, SimDuration};
    use std::rc::Rc;

    fn newfs() -> (Rc<Sim>, Rc<MemDisk>, Ext3) {
        let sim = Sim::new(7);
        let disk = Rc::new(MemDisk::new("d0", 300_000));
        let fs = Ext3::mkfs(sim.clone(), disk.clone(), Options::default()).unwrap();
        (sim, disk, fs)
    }

    #[test]
    fn mkfs_then_basic_tree() {
        let (_sim, _disk, fs) = newfs();
        let d = fs.mkdir(fs.root(), "a", 0o755).unwrap();
        let f = fs.create(d, "f", 0o644).unwrap();
        assert_eq!(fs.lookup(fs.root(), "a").unwrap(), d);
        assert_eq!(fs.lookup(d, "f").unwrap(), f);
        assert_eq!(fs.lookup(d, "missing"), Err(FsError::NotFound));
        let names: Vec<_> = fs
            .readdir(fs.root())
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec![".", "..", "a"]);
    }

    #[test]
    fn write_read_round_trip_small() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        fs.write(f, 0, b"hello world").unwrap();
        assert_eq!(fs.read(f, 0, 1024).unwrap(), b"hello world");
        assert_eq!(fs.read(f, 6, 5).unwrap(), b"world");
        assert_eq!(fs.getattr(f).unwrap().size, 11);
    }

    #[test]
    fn write_read_round_trip_large_spans_indirects() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "big", 0o644).unwrap();
        // 6 MB: direct (48 KB) + single indirect (4 MB) + into double.
        let mb = 1024 * 1024;
        let mut pattern = vec![0u8; 6 * mb];
        for (i, b) in pattern.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let chunk = 256 * 1024;
        for (i, c) in pattern.chunks(chunk).enumerate() {
            fs.write(f, (i * chunk) as u64, c).unwrap();
        }
        let attr = fs.getattr(f).unwrap();
        assert_eq!(attr.size, 6 * mb as u64);
        for &off in &[0u64, 40 * 1024, 4 * mb as u64, 5 * mb as u64 + 12345] {
            let got = fs.read(f, off, 1000).unwrap();
            assert_eq!(
                got,
                &pattern[off as usize..off as usize + 1000],
                "off {off}"
            );
        }
    }

    #[test]
    fn sparse_files_read_zero() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "sparse", 0o644).unwrap();
        fs.write(f, 1_000_000, b"end").unwrap();
        assert_eq!(fs.getattr(f).unwrap().size, 1_000_003);
        let hole = fs.read(f, 5000, 100).unwrap();
        assert!(hole.iter().all(|&b| b == 0));
        assert_eq!(fs.read(f, 1_000_000, 3).unwrap(), b"end");
    }

    #[test]
    fn unlink_frees_space() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        fs.write(f, 0, &vec![9u8; 100_000]).unwrap();
        fs.unlink(fs.root(), "f").unwrap();
        assert_eq!(fs.lookup(fs.root(), "f"), Err(FsError::NotFound));
        assert!(fs.fsck().unwrap().ok());
    }

    #[test]
    fn hard_links_share_data() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "a", 0o644).unwrap();
        fs.write(f, 0, b"shared").unwrap();
        fs.link(fs.root(), "b", f).unwrap();
        assert_eq!(fs.getattr(f).unwrap().links, 2);
        fs.unlink(fs.root(), "a").unwrap();
        let b = fs.lookup(fs.root(), "b").unwrap();
        assert_eq!(b, f);
        assert_eq!(fs.read(b, 0, 6).unwrap(), b"shared");
        assert_eq!(fs.getattr(b).unwrap().links, 1);
    }

    #[test]
    fn symlinks_fast_and_slow() {
        let (_sim, _disk, fs) = newfs();
        let s1 = fs.symlink(fs.root(), "s1", "short/target").unwrap();
        assert_eq!(fs.readlink(s1).unwrap(), "short/target");
        let long = "x/".repeat(80); // 160 bytes > FAST_SYMLINK_MAX
        let s2 = fs.symlink(fs.root(), "s2", &long).unwrap();
        assert_eq!(fs.readlink(s2).unwrap(), long);
        assert_eq!(fs.readlink(fs.root()), Err(FsError::NotASymlink));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let (_sim, _disk, fs) = newfs();
        let d1 = fs.mkdir(fs.root(), "d1", 0o755).unwrap();
        let d2 = fs.mkdir(fs.root(), "d2", 0o755).unwrap();
        let f = fs.create(d1, "f", 0o644).unwrap();
        fs.write(f, 0, b"data").unwrap();
        fs.rename(d1, "f", d2, "g").unwrap();
        assert_eq!(fs.lookup(d1, "f"), Err(FsError::NotFound));
        assert_eq!(fs.lookup(d2, "g").unwrap(), f);
        // Replace an existing file.
        let h = fs.create(d2, "h", 0o644).unwrap();
        fs.rename(d2, "g", d2, "h").unwrap();
        assert_eq!(fs.lookup(d2, "h").unwrap(), f);
        assert_ne!(fs.lookup(d2, "h").unwrap(), h);
        assert!(fs.fsck().unwrap().ok());
    }

    #[test]
    fn rename_directory_updates_dotdot_and_links() {
        let (_sim, _disk, fs) = newfs();
        let d1 = fs.mkdir(fs.root(), "d1", 0o755).unwrap();
        let d2 = fs.mkdir(fs.root(), "d2", 0o755).unwrap();
        let sub = fs.mkdir(d1, "sub", 0o755).unwrap();
        fs.rename(d1, "sub", d2, "sub2").unwrap();
        assert_eq!(fs.lookup(d2, "sub2").unwrap(), sub);
        assert_eq!(fs.lookup(sub, "..").unwrap(), d2);
        assert_eq!(fs.getattr(d1).unwrap().links, 2);
        assert_eq!(fs.getattr(d2).unwrap().links, 3);
        assert!(fs.fsck().unwrap().ok());
    }

    #[test]
    fn rmdir_requires_empty() {
        let (_sim, _disk, fs) = newfs();
        let d = fs.mkdir(fs.root(), "d", 0o755).unwrap();
        fs.create(d, "f", 0o644).unwrap();
        assert_eq!(fs.rmdir(fs.root(), "d"), Err(FsError::NotEmpty));
        fs.unlink(d, "f").unwrap();
        fs.rmdir(fs.root(), "d").unwrap();
        assert_eq!(fs.lookup(fs.root(), "d"), Err(FsError::NotFound));
        assert!(fs.fsck().unwrap().ok());
    }

    #[test]
    fn truncate_and_extend() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        fs.write(f, 0, &vec![7u8; 50_000]).unwrap();
        fs.setattr(
            f,
            SetAttr {
                size: Some(100),
                ..SetAttr::default()
            },
        )
        .unwrap();
        assert_eq!(fs.getattr(f).unwrap().size, 100);
        assert_eq!(fs.read(f, 0, 200).unwrap().len(), 100);
        assert!(fs.fsck().unwrap().ok());
    }

    #[test]
    fn setattr_changes_metadata() {
        let (_sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        let a = fs
            .setattr(
                f,
                SetAttr {
                    perm: Some(0o600),
                    uid: Some(42),
                    gid: Some(43),
                    atime: Some(1111),
                    mtime: Some(2222),
                    ..SetAttr::default()
                },
            )
            .unwrap();
        assert_eq!(a.perm, 0o600);
        assert_eq!(a.uid, 42);
        assert_eq!(a.gid, 43);
        assert_eq!(a.atime, 1111);
        assert_eq!(a.mtime, 2222);
    }

    #[test]
    fn unmount_remount_preserves_tree() {
        let (sim, disk, fs) = newfs();
        let d = fs.mkdir(fs.root(), "persist", 0o755).unwrap();
        let f = fs.create(d, "f", 0o644).unwrap();
        fs.write(f, 0, b"durable data").unwrap();
        fs.unmount().unwrap();
        let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
        let d2 = fs2.lookup(fs2.root(), "persist").unwrap();
        let f2 = fs2.lookup(d2, "f").unwrap();
        assert_eq!(fs2.read(f2, 0, 100).unwrap(), b"durable data");
        assert!(fs2.fsck().unwrap().ok());
    }

    #[test]
    fn crash_after_commit_recovers_via_journal() {
        let (sim, disk, fs) = newfs();
        let d = fs.mkdir(fs.root(), "committed", 0o755).unwrap();
        let _ = d;
        // Let the 5s commit pass, then crash before any checkpoint.
        sim.advance(SimDuration::from_secs(6));
        fs.crash();
        drop(fs);
        let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
        assert!(fs2.lookup(fs2.root(), "committed").is_ok());
        assert!(fs2.fsck().unwrap().ok());
    }

    #[test]
    fn crash_before_commit_loses_update_but_stays_consistent() {
        let (sim, disk, fs) = newfs();
        fs.mkdir(fs.root(), "lost", 0o755).unwrap();
        // Crash immediately: the running transaction never committed.
        fs.crash();
        drop(fs);
        let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
        assert_eq!(
            fs2.lookup(fs2.root(), "lost"),
            Err(FsError::NotFound),
            "uncommitted meta-data is lost (paper §2.3)"
        );
        assert!(fs2.fsck().unwrap().ok());
    }

    #[test]
    fn journal_commit_is_two_write_transactions() {
        // Use an iSCSI-style counter: a raw MemDisk has no counters, so
        // count journal commits via the sim counter and writeback via
        // device state changes is overkill here; instead check that a
        // burst of metadata ops followed by a commit produces exactly
        // one commit (aggregation).
        let (sim, _disk, fs) = newfs();
        let base = sim.counters().get("ext3.journal.commits");
        for i in 0..50 {
            fs.mkdir(fs.root(), &format!("d{i}"), 0o755).unwrap();
        }
        sim.advance(SimDuration::from_secs(6));
        assert_eq!(
            sim.counters().get("ext3.journal.commits") - base,
            1,
            "50 mkdirs aggregate into a single commit"
        );
    }

    #[test]
    fn journal_commits_emit_spans_and_latencies() {
        let (sim, _disk, fs) = newfs();
        // mkfs itself commits; only count what happens after.
        let base = sim
            .metrics()
            .histogram("ext3.journal.commit")
            .map_or(0, |h| h.count());
        sim.tracer().set_enabled(true);
        for i in 0..10 {
            fs.mkdir(fs.root(), &format!("d{i}"), 0o755).unwrap();
        }
        sim.advance(SimDuration::from_secs(6));
        let h = sim.metrics().histogram("ext3.journal.commit").unwrap();
        assert_eq!(h.count() - base, 1, "one aggregated commit");
        let spans = sim.tracer().spans();
        let commits: Vec<_> = spans.iter().filter(|s| s.op == "journal_commit").collect();
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].layer, "ext3");
        assert!(commits[0]
            .attrs
            .iter()
            .any(|(k, v)| *k == "meta_blocks" && v.parse::<u64>().unwrap() > 0));
    }

    #[test]
    fn fsck_detects_corruption() {
        let (_sim, disk, fs) = newfs();
        let d = fs.mkdir(fs.root(), "x", 0o755).unwrap();
        let _ = d;
        fs.unmount().unwrap();
        // Clobber the root directory block on the raw device: the tree
        // is now inconsistent with the bitmaps.
        // Find root dir block: read root inode via a fresh mount is
        // simplest; instead corrupt the inode bitmap of group 0.
        let sim2 = Sim::new(9);
        let fs2 = Ext3::mount(sim2, disk.clone(), Options::default()).unwrap();
        // Reach into the device and flip a bit in some inode bitmap.
        // Group 0 inode bitmap is at journal_end + 1.
        let opts = Options::default();
        let ib = 2 + opts.journal_blocks + 1;
        let mut img = vec![0u8; blockdev::BLOCK_SIZE];
        disk.read(ib, 1, &mut img).unwrap();
        img[100] = 0xFF; // mark 8 random inodes used
        disk.write(ib, &img).unwrap();
        let report = fs2.fsck().unwrap();
        assert!(!report.ok());
    }

    #[test]
    fn reading_before_checkpoint_sees_committed_image() {
        // Meta-data committed to the journal but not yet checkpointed
        // must be visible through a cold cache (pending-image path).
        let (sim, _disk, fs) = newfs();
        fs.mkdir(fs.root(), "pending", 0o755).unwrap();
        sim.advance(SimDuration::from_secs(6)); // commit, no checkpoint
                                                // Evict everything clean to force re-reads.
        fs.sync().unwrap();
        assert!(fs.lookup(fs.root(), "pending").is_ok());
    }

    #[test]
    fn directory_grows_past_one_block() {
        let (_sim, _disk, fs) = newfs();
        let d = fs.mkdir(fs.root(), "big", 0o755).unwrap();
        for i in 0..500 {
            fs.create(d, &format!("file_with_a_longish_name_{i:04}"), 0o644)
                .unwrap();
        }
        assert!(fs.getattr(d).unwrap().size > blockdev::BLOCK_SIZE as u64);
        assert!(fs.lookup(d, "file_with_a_longish_name_0499").is_ok());
        assert_eq!(fs.readdir(d).unwrap().len(), 502);
        assert!(fs.fsck().unwrap().ok());
    }

    #[test]
    fn dirty_data_flushes_in_background() {
        let (sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        fs.write(f, 0, &vec![1u8; 1 << 20]).unwrap(); // 1 MB dirty
        assert_eq!(sim.counters().get("ext3.writeback.blocks"), 0);
        sim.advance(SimDuration::from_secs(11));
        assert!(sim.counters().get("ext3.writeback.blocks") >= 256);
    }

    #[test]
    fn atime_updates_on_read_when_enabled() {
        let (sim, _disk, fs) = newfs();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        fs.write(f, 0, b"x").unwrap();
        let before = fs.getattr(f).unwrap().atime;
        sim.advance(SimDuration::from_secs(1));
        fs.read(f, 0, 1).unwrap();
        assert!(fs.getattr(f).unwrap().atime > before);
    }

    #[test]
    fn operations_take_simulated_time() {
        let (sim, _disk, fs) = newfs();
        let t0 = sim.now();
        let f = fs.create(fs.root(), "f", 0o644).unwrap();
        fs.write(f, 0, &vec![0u8; 64 * 1024]).unwrap();
        assert!(sim.now() > t0, "writes must consume CPU/copy time");
    }
}
