//! The `Ext3` file system object: mount/mkfs, the buffer-cache and
//! journal plumbing, allocators, and the background commit/write-back
//! daemons. The file operations themselves live in [`crate::ops`].

use crate::alloc;
use crate::cache::{BufferCache, DirtyKind};
use crate::error::{FsError, FsResult};
use crate::journal::Journal;
use crate::layout::*;
use blockdev::{BlockDevice, BlockNo, IoCost, BLOCK_SIZE};
use simkit::{Daemon, Sim, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};

/// Inode number.
pub type Ino = u32;

/// Tunables of the file system, calibrated to the paper's testbed
/// (RedHat Linux 9, kernel 2.4.20, ext3 defaults).
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Buffer-cache capacity in blocks. The paper's client has 512 MB
    /// of RAM; the default models ~256 MB of page/buffer cache.
    pub cache_blocks: usize,
    /// Journal commit interval (ext3 default: 5 s).
    pub commit_interval: SimDuration,
    /// Dirty-data write-back interval (pdflush/kupdated style).
    pub flush_interval: SimDuration,
    /// Dirty-data threshold (blocks) beyond which writers are
    /// throttled into foreground flushing (~40% of client RAM).
    pub dirty_limit_blocks: usize,
    /// Maximum read-ahead window in blocks.
    pub readahead_max: u32,
    /// Overlap factor for asynchronous read-ahead I/O (tagged SCSI
    /// commands in flight while the application consumes earlier
    /// data): pure-prefetch device time is divided by this.
    pub prefetch_pipeline: u32,
    /// Largest merged write-back command in blocks (the paper observed
    /// mean iSCSI write requests of 128 KB = 32 blocks).
    pub max_write_cmd_blocks: u32,
    /// Journal region length in blocks (fixed at mkfs).
    pub journal_blocks: u64,
    /// Maintain access times (ext3 default: yes). Atime updates are
    /// what give iSCSI its warm-read message overhead (paper §4.4).
    pub atime: bool,
    /// CPU cost of moving one block between user and page cache;
    /// models the client-side memory path that bounds cached I/O.
    pub mem_copy_cost: SimDuration,
    /// Machine this instance runs on, for trace attribution: journal
    /// commits fire from a daemon (no enclosing request span), so the
    /// host cannot be inherited and must be configured. The server's
    /// ext3 runs at `HostId::SERVER`; an iSCSI client's runs at
    /// `HostId::client(i)`.
    pub trace_host: simkit::HostId,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cache_blocks: 65_536,
            commit_interval: SimDuration::from_secs(5),
            flush_interval: SimDuration::from_secs(5),
            dirty_limit_blocks: 51_200, // ~200 MB
            readahead_max: 8,
            prefetch_pipeline: 1,
            max_write_cmd_blocks: 32,
            journal_blocks: 1024,
            atime: true,
            mem_copy_cost: SimDuration::from_micros(60),
            trace_host: simkit::HostId::SERVER,
        }
    }
}

/// File attributes as returned by `getattr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Inode number.
    pub ino: Ino,
    /// File type.
    pub ftype: FileType,
    /// Permission bits.
    pub perm: u16,
    /// Hard links.
    pub links: u16,
    /// Owner / group.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// Access time (sim ns).
    pub atime: u64,
    /// Modification time (sim ns).
    pub mtime: u64,
    /// Change time (sim ns).
    pub ctime: u64,
    /// Allocated blocks.
    pub nblocks: u32,
}

/// File-system-wide statistics, as returned by `statfs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatFs {
    /// Total data blocks.
    pub blocks_total: u64,
    /// Free data blocks.
    pub blocks_free: u64,
    /// Total inodes.
    pub inodes_total: u64,
    /// Free inodes.
    pub inodes_free: u64,
    /// Block size in bytes.
    pub block_size: u32,
}

/// Attribute changes for `setattr`. `None` fields are untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// New permission bits.
    pub perm: Option<u16>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// New access time.
    pub atime: Option<u64>,
    /// New modification time.
    pub mtime: Option<u64>,
}

/// Whether device time is foreground (advances the virtual clock at
/// the end of the operation) or background (accumulates utilization
/// only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoMode {
    Foreground,
    Background,
}

#[derive(Debug, Clone, Copy)]
struct RaState {
    next_expected: u64,
    window: u32,
}

pub(crate) struct State {
    pub sb: SuperBlock,
    pub groups: Vec<GroupDesc>,
    pub layouts: Vec<GroupLayout>,
    pub cache: BufferCache,
    pub journal: Journal,
    ra: HashMap<Ino, RaState>,
    alloc_hint: HashMap<u32, usize>,
    dir_group_hint: HashMap<Ino, u32>,
    next_commit: SimTime,
    next_flush: SimTime,
    pub mounted: bool,
}

pub(crate) struct Inner {
    pub sim: Rc<Sim>,
    pub dev: Rc<dyn BlockDevice>,
    pub opts: Options,
    pub state: RefCell<State>,
    fg_cost: Cell<SimDuration>,
    bg_busy: Cell<SimDuration>,
    mode: Cell<IoMode>,
}

/// An ext3-like journaling file system over a block device.
///
/// See the [crate documentation](crate) for the role it plays in the
/// testbed. All operations are inode-based (like the kernel VFS); path
/// walking lives in the `vfs` crate so that NFS and local mounts
/// resolve names the same way.
pub struct Ext3 {
    pub(crate) inner: Rc<Inner>,
    _daemons: Vec<Rc<dyn Daemon>>,
}

impl std::fmt::Debug for Ext3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.borrow();
        f.debug_struct("Ext3")
            .field("device", &self.inner.dev.name())
            .field("groups", &st.groups.len())
            .field("cached_blocks", &st.cache.len())
            .field("mounted", &st.mounted)
            .finish()
    }
}

/// The file system's periodic background work — the kjournald commit
/// timer and the pdflush write-back timer — as one scheduled event.
/// The daemon keeps exactly one wakeup in the calendar at
/// `min(next_commit, next_flush)`, attributed to the owning machine's
/// `trace_host`; when both timers land on the same instant the commit
/// runs first (the order the per-daemon polling core fired them).
/// Unmounting idles the daemon: its pending wakeup fires as a no-op
/// and is not re-armed.
struct JournalTimers {
    inner: Weak<Inner>,
}

impl Daemon for JournalTimers {
    fn fire(&self, now: SimTime) -> Option<SimTime> {
        let inner = self.inner.upgrade()?;
        let prev = inner.mode.replace(IoMode::Background);
        let next = {
            let mut st = inner.state.borrow_mut();
            if !st.mounted {
                None
            } else {
                if now >= st.next_commit {
                    commit_journal(&inner, &mut st);
                    st.next_commit = now + inner.opts.commit_interval;
                }
                if now >= st.next_flush {
                    flush_data(&inner, &mut st, usize::MAX);
                    st.cache.shrink_to_capacity();
                    st.next_flush = now + inner.opts.flush_interval;
                }
                Some(st.next_commit.min(st.next_flush))
            }
        };
        inner.mode.set(prev);
        next
    }
    fn name(&self) -> &str {
        "ext3-journal-timers"
    }
}

impl Ext3 {
    /// Formats `dev` and mounts the fresh file system.
    ///
    /// # Errors
    ///
    /// Fails if the device is too small or the initial writes fail.
    pub fn mkfs(sim: Rc<Sim>, dev: Rc<dyn BlockDevice>, opts: Options) -> FsResult<Ext3> {
        let blocks_count = dev.block_count();
        let jlen = opts.journal_blocks;
        let groups_count = groups_for(blocks_count, jlen);
        let sb = SuperBlock {
            blocks_count,
            groups_count,
            journal_start: 2,
            journal_len: jlen,
            journal_seq: 1,
            clean: true,
        };
        dev.write(0, &sb.encode())?;
        // Zero the journal's first block so a stale log is not replayed.
        dev.write(2, &vec![0u8; BLOCK_SIZE])?;

        let mut gd_block = vec![0u8; BLOCK_SIZE];
        let mut groups = Vec::with_capacity(groups_count as usize);
        for g in 0..groups_count {
            let lay = group_layout(g, jlen, blocks_count);
            let meta = lay.data_start - lay.start;
            let usable = lay.end.saturating_sub(lay.data_start) as u32;
            // Block bitmap: metadata + nonexistent tail marked used.
            let mut bbmap = vec![0u8; BLOCK_SIZE];
            for i in 0..meta as usize {
                alloc::set_bit(&mut bbmap, i);
            }
            for i in (lay.end - lay.start) as usize..BLOCKS_PER_GROUP as usize {
                alloc::set_bit(&mut bbmap, i);
            }
            dev.write(lay.block_bitmap, &bbmap)?;
            // Inode bitmap: reserve inodes 1..FIRST_FREE_INO in group 0.
            let mut ibmap = vec![0u8; BLOCK_SIZE];
            let mut free_inodes = INODES_PER_GROUP as u32;
            if g == 0 {
                for idx in 0..(FIRST_FREE_INO - 1) as usize {
                    alloc::set_bit(&mut ibmap, idx);
                }
                free_inodes -= FIRST_FREE_INO - 1;
            }
            dev.write(lay.inode_bitmap, &ibmap)?;
            let gd = GroupDesc {
                block_bitmap: lay.block_bitmap,
                inode_bitmap: lay.inode_bitmap,
                inode_table: lay.inode_table,
                free_blocks: usable,
                free_inodes,
            };
            gd.encode(&mut gd_block[g as usize * GROUP_DESC_SIZE..]);
            groups.push(gd);
        }
        dev.write(1, &gd_block)?;

        let fs = Self::assemble(sim, dev, opts, sb, groups)?;
        // Root directory: inode + one data block with "." and "..".
        {
            let inner = fs.inner.clone();
            let mut st = inner.state.borrow_mut();
            // The volume is mounted from here on: mark it dirty so a
            // crash before unmount triggers journal replay.
            st.sb.clean = false;
            let now = inner.sim.now().as_nanos();
            let mut root = Inode::new(FileType::Directory, 0o755, now);
            root.links = 2;
            let blk = alloc_block(&inner, &mut st, 0)?;
            let mut img = vec![0u8; BLOCK_SIZE];
            crate::dir::init_block(&mut img);
            crate::dir::insert(&mut img, ".", ROOT_INO, FileType::Directory);
            crate::dir::insert(&mut img, "..", ROOT_INO, FileType::Directory);
            st.cache.insert(blk, &img, DirtyKind::Meta);
            st.journal.add(blk);
            root.block[0] = blk as u32;
            root.size = BLOCK_SIZE as u64;
            root.nblocks = 1;
            write_inode(&inner, &mut st, ROOT_INO, &root)?;
            commit_journal(&inner, &mut st);
            checkpoint(&inner, &mut st)?;
        }
        fs.inner.fg_cost.set(SimDuration::ZERO); // mkfs time is free
        Ok(fs)
    }

    /// Mounts an existing file system, replaying the journal if the
    /// previous instance crashed.
    ///
    /// # Errors
    ///
    /// Fails on a bad superblock or journal corruption.
    pub fn mount(sim: Rc<Sim>, dev: Rc<dyn BlockDevice>, opts: Options) -> FsResult<Ext3> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        let c0 = dev.read(0, 1, &mut buf)?;
        let mut sb = SuperBlock::decode(&buf)?;

        let mut recovery_cost = IoCost::FREE;
        if !sb.clean {
            // Crash recovery: scan the journal region and replay.
            let mut region = vec![0u8; (sb.journal_len as usize) * BLOCK_SIZE];
            recovery_cost = recovery_cost.then(dev.read(
                sb.journal_start,
                sb.journal_len as u32,
                &mut region,
            )?);
            let (recovered, next_seq) = crate::journal::replay_scan(&region, sb.journal_seq)?;
            for (bno, img) in &recovered {
                recovery_cost = recovery_cost.then(dev.write(*bno, img)?);
            }
            sb.journal_seq = next_seq;
        }
        sb.clean = false; // mounted dirty until clean unmount
        dev.write(0, &sb.encode())?;

        // Group descriptors are read *after* replay: a recovered
        // transaction may contain block 1.
        let mut gd_block = vec![0u8; BLOCK_SIZE];
        let c1 = dev.read(1, 1, &mut gd_block)?;
        let groups: Vec<GroupDesc> = (0..sb.groups_count)
            .map(|g| GroupDesc::decode(&gd_block[g as usize * GROUP_DESC_SIZE..]))
            .collect();

        let fs = Self::assemble(sim, dev, opts, sb, groups)?;
        fs.inner
            .fg_cost
            .set(c0.then(c1).then(recovery_cost).time.into_duration());
        // Mount reads land in the cache so the superblock/descriptors
        // are warm, as in a real mount.
        {
            let sb_img = fs.inner.state_sb_image();
            let mut st = fs.inner.state.borrow_mut();
            st.cache.insert_clean(0, &sb_img);
            st.cache.insert_clean(1, &gd_block);
        }
        let cost = fs.inner.fg_cost.replace(SimDuration::ZERO);
        fs.inner.sim.advance(cost);
        Ok(fs)
    }

    fn assemble(
        sim: Rc<Sim>,
        dev: Rc<dyn BlockDevice>,
        opts: Options,
        sb: SuperBlock,
        groups: Vec<GroupDesc>,
    ) -> FsResult<Ext3> {
        let layouts = (0..sb.groups_count)
            .map(|g| group_layout(g, sb.journal_len, sb.blocks_count))
            .collect();
        let journal = Journal::new(sb.journal_start, sb.journal_len, sb.journal_seq);
        let now = sim.now();
        let state = State {
            sb,
            groups,
            layouts,
            cache: BufferCache::new(opts.cache_blocks),
            journal,
            ra: HashMap::new(),
            alloc_hint: HashMap::new(),
            dir_group_hint: HashMap::new(),
            next_commit: now + opts.commit_interval,
            next_flush: now + opts.flush_interval,
            mounted: true,
        };
        let inner = Rc::new(Inner {
            sim: sim.clone(),
            dev,
            opts,
            state: RefCell::new(state),
            fg_cost: Cell::new(SimDuration::ZERO),
            bg_busy: Cell::new(SimDuration::ZERO),
            mode: Cell::new(IoMode::Foreground),
        });
        let timers: Rc<dyn Daemon> = Rc::new(JournalTimers {
            inner: Rc::downgrade(&inner),
        });
        let first_wake = {
            let st = inner.state.borrow();
            st.next_commit.min(st.next_flush)
        };
        sim.schedule_daemon(first_wake, inner.opts.trace_host, Rc::downgrade(&timers));
        Ok(Ext3 {
            inner,
            _daemons: vec![timers],
        })
    }

    /// The root directory inode.
    pub fn root(&self) -> Ino {
        ROOT_INO
    }

    /// The simulation context this file system charges time to.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.inner.sim
    }

    /// Total background device time accumulated (journal commits and
    /// data write-back) — the disk-utilization side of the CPU story.
    pub fn background_busy(&self) -> SimDuration {
        self.inner.bg_busy.get()
    }

    /// Buffer-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.state.borrow().cache.stats()
    }

    /// Blocks currently resident in the buffer cache (pagecache
    /// occupancy, as sampled by the testbed's gauge daemon).
    pub fn cached_blocks(&self) -> usize {
        self.inner.state.borrow().cache.len()
    }

    /// File-system-wide statistics from the group descriptors.
    ///
    /// # Errors
    ///
    /// Fails if the file system is unmounted.
    pub fn statfs(&self) -> FsResult<StatFs> {
        self.with_op(|_inner, st| {
            let mut s = StatFs {
                blocks_total: 0,
                blocks_free: 0,
                inodes_total: st.groups.len() as u64 * INODES_PER_GROUP,
                inodes_free: 0,
                block_size: BLOCK_SIZE as u32,
            };
            for (g, lay) in st.layouts.iter().enumerate() {
                s.blocks_total += lay.end.saturating_sub(lay.data_start);
                s.blocks_free += st.groups[g].free_blocks as u64;
                s.inodes_free += st.groups[g].free_inodes as u64;
            }
            Ok(s)
        })
    }

    /// Forces a journal commit and full data write-back (foreground).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn sync(&self) -> FsResult<()> {
        self.with_op(|inner, st| {
            commit_journal(inner, st);
            flush_data(inner, st, usize::MAX);
            debug_assert!(st.cache.dirty_blocks(DirtyKind::Data).is_empty());
            Ok(())
        })
    }

    /// Cleanly unmounts: commits, flushes, checkpoints, and marks the
    /// superblock clean. Further operations fail.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn unmount(&self) -> FsResult<()> {
        self.with_op(|inner, st| {
            if !st.mounted {
                return Ok(());
            }
            commit_journal(inner, st);
            flush_data(inner, st, usize::MAX);
            checkpoint(inner, st)?;
            st.sb.clean = true;
            let cost = inner.dev.write(0, &st.sb.encode())?;
            inner.charge(cost);
            st.cache.clear();
            st.mounted = false;
            Ok(())
        })
    }

    /// Flushes everything (journal commit, data write-back,
    /// checkpoint) and empties the caches, leaving the file system
    /// mounted. This is the unmount/remount the paper uses to emulate
    /// a cold cache, minus the re-read of the superblock.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn drop_caches(&self) -> FsResult<()> {
        self.with_op(|inner, st| {
            commit_journal(inner, st);
            flush_data(inner, st, usize::MAX);
            checkpoint(inner, st)?;
            debug_assert_eq!(st.journal.checkpoint_pending_len(), 0);
            st.cache.clear();
            st.ra.clear();
            debug_assert!(st.cache.is_empty());
            Ok(())
        })
    }

    /// Simulates a client crash: every volatile structure (cache,
    /// running transaction) disappears; nothing is written. The device
    /// keeps whatever the journal and write-back had already pushed.
    pub fn crash(&self) {
        let mut st = self.inner.state.borrow_mut();
        st.cache.clear();
        st.mounted = false;
    }

    /// Runs `f` against the file-system state, then advances the
    /// virtual clock by the foreground cost the operation accumulated.
    pub(crate) fn with_op<T>(
        &self,
        f: impl FnOnce(&Inner, &mut State) -> FsResult<T>,
    ) -> FsResult<T> {
        let inner = &self.inner;
        let res = {
            let mut st = inner.state.borrow_mut();
            if !st.mounted {
                return Err(FsError::Io("filesystem not mounted".into()));
            }
            let r = f(inner, &mut st);
            st.cache.shrink_to_capacity();
            r
        };
        let cost = inner.fg_cost.replace(SimDuration::ZERO);
        inner.sim.advance(cost);
        res
    }
}

impl Inner {
    pub(crate) fn charge(&self, cost: IoCost) {
        match self.mode.get() {
            IoMode::Foreground => self.fg_cost.set(self.fg_cost.get() + cost.time),
            IoMode::Background => self.bg_busy.set(self.bg_busy.get() + cost.time),
        }
    }

    pub(crate) fn charge_cpu(&self, d: SimDuration) {
        self.fg_cost.set(self.fg_cost.get() + d);
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.sim.now().as_nanos()
    }

    fn state_sb_image(&self) -> Vec<u8> {
        self.state.borrow().sb.encode()
    }
}

/// Extension to turn an [`IoCost`] into a duration (readability).
trait IntoDuration {
    fn into_duration(self) -> SimDuration;
}
impl IntoDuration for SimDuration {
    fn into_duration(self) -> SimDuration {
        self
    }
}

// ---------------------------------------------------------------------
// Block and inode primitives
// ---------------------------------------------------------------------

/// Reads a block through the cache (foreground cost on miss). Checks
/// the journal's checkpoint-pending images before the device: their
/// home locations are stale until checkpointed.
pub(crate) fn bread(inner: &Inner, st: &mut State, bno: BlockNo) -> FsResult<[u8; BLOCK_SIZE]> {
    if let Some(b) = st.cache.get(bno) {
        return Ok(*b);
    }
    if let Some(img) = st.journal.pending_image(bno) {
        st.cache.insert_clean(bno, &img);
        return Ok(img);
    }
    let mut buf = vec![0u8; BLOCK_SIZE];
    let cost = inner.dev.read(bno, 1, &mut buf)?;
    inner.charge(cost);
    st.cache.insert_clean(bno, &buf);
    let mut out = [0u8; BLOCK_SIZE];
    out.copy_from_slice(&buf);
    Ok(out)
}

/// Modifies a block in cache, loading it first if needed, and tags it
/// with the given dirty kind. Meta blocks join the running journal
/// transaction.
pub(crate) fn bmodify(
    inner: &Inner,
    st: &mut State,
    bno: BlockNo,
    kind: DirtyKind,
    f: impl FnOnce(&mut [u8; BLOCK_SIZE]),
) -> FsResult<()> {
    if !st.cache.contains(bno) {
        bread(inner, st, bno)?;
    }
    st.cache.modify(bno, kind, f);
    if kind == DirtyKind::Meta {
        st.journal.add(bno);
    }
    Ok(())
}

/// Installs a brand-new block image (no device read) with the given
/// dirty kind.
pub(crate) fn binstall(_inner: &Inner, st: &mut State, bno: BlockNo, img: &[u8], kind: DirtyKind) {
    st.cache.insert(bno, img, kind);
    if kind == DirtyKind::Meta {
        st.journal.add(bno);
    }
}

fn inode_location(st: &State, ino: Ino) -> FsResult<(BlockNo, usize)> {
    if ino == 0 {
        return Err(FsError::NotFound);
    }
    let idx = (ino - 1) as u64;
    let g = (idx / INODES_PER_GROUP) as usize;
    if g >= st.layouts.len() {
        return Err(FsError::NotFound);
    }
    let within = idx % INODES_PER_GROUP;
    let block = st.layouts[g].inode_table + within / INODES_PER_BLOCK as u64;
    let slot = (within % INODES_PER_BLOCK as u64) as usize;
    Ok((block, slot * INODE_SIZE))
}

/// Reads an inode.
pub(crate) fn read_inode(inner: &Inner, st: &mut State, ino: Ino) -> FsResult<Inode> {
    let (block, off) = inode_location(st, ino)?;
    let img = bread(inner, st, block)?;
    Ok(Inode::decode(&img[off..off + INODE_SIZE]))
}

/// Writes an inode (journaled meta-data update).
pub(crate) fn write_inode(inner: &Inner, st: &mut State, ino: Ino, inode: &Inode) -> FsResult<()> {
    let (block, off) = inode_location(st, ino)?;
    bmodify(inner, st, block, DirtyKind::Meta, |b| {
        inode.encode(&mut b[off..off + INODE_SIZE]);
    })
}

/// Allocates an inode, preferring `goal_group`. Updates the bitmap and
/// group descriptor (both journaled).
pub(crate) fn alloc_inode(inner: &Inner, st: &mut State, goal_group: u32) -> FsResult<Ino> {
    alloc_inode_in(inner, st, goal_group)
}

/// Directory inodes are spread across block groups (ext2's Orlov-style
/// policy: pick the group with the most free blocks), but sibling
/// directories cluster in their first sibling's group. The spreading
/// is why the paper sees two extra iSCSI messages per path component —
/// each directory in a path lives in a different group — while the
/// clustering keeps warm-cache operations on "similar" sibling objects
/// down to the journal writes.
pub(crate) fn alloc_dir_inode(inner: &Inner, st: &mut State, parent: Ino) -> FsResult<Ino> {
    if let Some(&g) = st.dir_group_hint.get(&parent) {
        if st.groups[g as usize].free_inodes > 0 && st.groups[g as usize].free_blocks > 8 {
            return alloc_inode_in(inner, st, g);
        }
    }
    let best = st
        .groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.free_inodes > 0)
        .max_by_key(|(_, g)| g.free_blocks)
        .map(|(i, _)| i as u32)
        .ok_or(FsError::NoSpace)?;
    st.dir_group_hint.insert(parent, best);
    alloc_inode_in(inner, st, best)
}

fn alloc_inode_in(inner: &Inner, st: &mut State, goal_group: u32) -> FsResult<Ino> {
    let n = st.groups.len() as u32;
    for i in 0..n {
        let g = (goal_group + i) % n;
        if st.groups[g as usize].free_inodes == 0 {
            continue;
        }
        let bmap_block = st.groups[g as usize].inode_bitmap;
        let img = bread(inner, st, bmap_block)?;
        let start = if g == 0 {
            (FIRST_FREE_INO - 1) as usize
        } else {
            0
        };
        if let Some(idx) = alloc::find_zero(&img, start, INODES_PER_GROUP as usize) {
            bmodify(inner, st, bmap_block, DirtyKind::Meta, |b| {
                alloc::set_bit(b, idx);
            })?;
            st.groups[g as usize].free_inodes -= 1;
            write_group_desc(inner, st, g)?;
            return Ok((g as u64 * INODES_PER_GROUP + idx as u64 + 1) as Ino);
        }
    }
    Err(FsError::NoSpace)
}

/// Frees an inode.
pub(crate) fn free_inode(inner: &Inner, st: &mut State, ino: Ino) -> FsResult<()> {
    let idx = (ino - 1) as u64;
    let g = (idx / INODES_PER_GROUP) as usize;
    let within = (idx % INODES_PER_GROUP) as usize;
    let bmap_block = st.groups[g].inode_bitmap;
    bmodify(inner, st, bmap_block, DirtyKind::Meta, |b| {
        alloc::clear_bit(b, within);
    })?;
    st.groups[g].free_inodes += 1;
    write_group_desc(inner, st, g as u32)?;
    // Clear the on-disk inode so fsck sees it free.
    write_inode(inner, st, ino, &Inode::empty())
}

/// Allocates a data block near `goal_group` (first fit with a rolling
/// per-group hint for contiguity). Updates bitmap + descriptor.
pub(crate) fn alloc_block(inner: &Inner, st: &mut State, goal_group: u32) -> FsResult<BlockNo> {
    let n = st.groups.len() as u32;
    for i in 0..n {
        let g = (goal_group + i) % n;
        if st.groups[g as usize].free_blocks == 0 {
            continue;
        }
        let lay = st.layouts[g as usize];
        let bmap_block = st.groups[g as usize].block_bitmap;
        let img = bread(inner, st, bmap_block)?;
        let limit = (lay.end - lay.start) as usize;
        let hint = *st
            .alloc_hint
            .get(&g)
            .unwrap_or(&((lay.data_start - lay.start) as usize));
        if let Some(idx) = alloc::find_zero(&img, hint, limit) {
            bmodify(inner, st, bmap_block, DirtyKind::Meta, |b| {
                alloc::set_bit(b, idx);
            })?;
            st.alloc_hint.insert(g, idx + 1);
            st.groups[g as usize].free_blocks -= 1;
            write_group_desc(inner, st, g)?;
            return Ok(lay.start + idx as u64);
        }
    }
    Err(FsError::NoSpace)
}

/// Frees a data block.
pub(crate) fn free_block(inner: &Inner, st: &mut State, bno: BlockNo) -> FsResult<()> {
    let g = st
        .layouts
        .iter()
        .position(|l| bno >= l.start && bno < l.end)
        .ok_or(FsError::Corrupt("freeing block outside any group"))?;
    let idx = (bno - st.layouts[g].start) as usize;
    let bmap_block = st.groups[g].block_bitmap;
    bmodify(inner, st, bmap_block, DirtyKind::Meta, |b| {
        alloc::clear_bit(b, idx);
    })?;
    st.groups[g].free_blocks += 1;
    write_group_desc(inner, st, g as u32)
}

fn write_group_desc(inner: &Inner, st: &mut State, g: u32) -> FsResult<()> {
    let gd = st.groups[g as usize];
    bmodify(inner, st, 1, DirtyKind::Meta, |b| {
        gd.encode(&mut b[g as usize * GROUP_DESC_SIZE..]);
    })
}

/// Group an inode's blocks should come from.
pub(crate) fn group_of_ino(ino: Ino) -> u32 {
    ((ino - 1) as u64 / INODES_PER_GROUP) as u32
}

// ---------------------------------------------------------------------
// Journal commit / checkpoint / data write-back
// ---------------------------------------------------------------------

/// Commits the running transaction (if any): writes descriptor +
/// images as one merged command and the commit record as another, then
/// marks the meta blocks clean (their committed images are pinned in
/// the journal until checkpoint).
pub(crate) fn commit_journal(inner: &Inner, st: &mut State) {
    // Oversized transactions commit in slices, as in JBD.
    while !st.journal.running_is_empty() {
        if st.journal.needs_checkpoint() {
            let _ = checkpoint(inner, st);
        }
        let State {
            ref mut journal,
            ref mut cache,
            ..
        } = *st;
        let plan = journal.commit(|bno| cache.peek(bno).unwrap_or([0u8; BLOCK_SIZE]));
        let Some(plan) = plan else { return };
        // Issue the merged commands to the device, bracketed by a span
        // so per-command device work (disk service or remote CDBs)
        // nests under this commit slice. Commits fire from a daemon, so
        // there is no request to inherit a host from: the configured
        // trace_host says whose machine's journal this is.
        let tracer = inner.sim.tracer();
        let ctx = tracer.open_span(Some(inner.opts.trace_host));
        let mut widx = 0usize;
        let mut commit_time = SimDuration::ZERO;
        let mut failed = false;
        for &(start, len) in &plan.commands {
            let mut buf = Vec::with_capacity(len as usize * BLOCK_SIZE);
            for _ in 0..len {
                buf.extend_from_slice(&plan.writes[widx].1);
                widx += 1;
            }
            match inner.dev.write(start, &buf) {
                Ok(cost) => {
                    commit_time += cost.time;
                    inner.charge(cost);
                }
                Err(_) => {
                    failed = true; // device failure: transaction stays dirty-ish
                    break;
                }
            }
        }
        if failed {
            let now = inner.sim.now();
            tracer.close_span(ctx, "ext3", "journal_commit", now, now, Vec::new());
            return;
        }
        // Meta blocks are now stable in the log.
        for (bno, _) in plan.writes.iter().skip(1).take(plan.writes.len() - 2) {
            st.cache.mark_clean(*bno);
        }
        inner.sim.counters().incr("ext3.journal.commits");
        inner
            .sim
            .metrics()
            .record_duration("ext3.journal.commit", commit_time);
        let now = inner.sim.now();
        let attrs = if ctx.is_disabled() {
            Vec::new()
        } else {
            vec![
                ("seq", plan.seq.to_string()),
                // Descriptor + commit block bracket the meta images.
                ("meta_blocks", (plan.writes.len() - 2).to_string()),
            ]
        };
        tracer.close_span(ctx, "ext3", "journal_commit", now, now + commit_time, attrs);
        debug_assert!(plan.seq >= 1);
    }
}

/// Writes all committed-but-not-checkpointed blocks to their home
/// locations (merged into runs) and persists the advanced journal
/// sequence in the superblock.
pub(crate) fn checkpoint(inner: &Inner, st: &mut State) -> FsResult<()> {
    let pending = st.journal.take_checkpoint();
    if !pending.is_empty() {
        let runs = merge_runs(
            pending.iter().map(|(b, _)| *b),
            inner.opts.max_write_cmd_blocks,
        );
        let images: HashMap<BlockNo, &[u8; BLOCK_SIZE]> =
            pending.iter().map(|(b, i)| (*b, i)).collect();
        for (start, len) in runs {
            let mut buf = Vec::with_capacity(len as usize * BLOCK_SIZE);
            for i in 0..len as u64 {
                buf.extend_from_slice(&images[&(start + i)][..]);
            }
            let cost = inner.dev.write(start, &buf)?;
            inner.charge(cost);
        }
    }
    st.sb.journal_seq = st.journal.next_seq();
    let cost = inner.dev.write(0, &st.sb.encode())?;
    inner.charge(cost);
    Ok(())
}

/// Writes back up to `limit` dirty data blocks, merging adjacent
/// blocks into large commands (this is the aggregation that gives
/// iSCSI its 128 KB mean write size in the paper). Returns how many
/// blocks were cleaned.
pub(crate) fn flush_data(inner: &Inner, st: &mut State, limit: usize) -> usize {
    let dirty = st.cache.dirty_data_prefix(limit);
    if dirty.is_empty() {
        return 0;
    }
    let runs = merge_runs(dirty, inner.opts.max_write_cmd_blocks);
    let mut cleaned = 0usize;
    for (start, len) in runs {
        let mut buf = Vec::with_capacity(len as usize * BLOCK_SIZE);
        for i in 0..len as u64 {
            buf.extend_from_slice(&st.cache.peek(start + i).expect("dirty block resident"));
        }
        match inner.dev.write(start, &buf) {
            Ok(cost) => inner.charge(cost),
            Err(_) => continue,
        }
        for i in 0..len as u64 {
            st.cache.mark_clean(start + i);
        }
        cleaned += len as usize;
    }
    inner
        .sim
        .counters()
        .add("ext3.writeback.blocks", cleaned as u64);
    cleaned
}

/// Coalesces sorted block numbers into `(start, len)` runs capped at
/// `max_len` blocks each.
pub(crate) fn merge_runs(
    blocks: impl IntoIterator<Item = BlockNo>,
    max_len: u32,
) -> Vec<(BlockNo, u32)> {
    let mut out: Vec<(BlockNo, u32)> = Vec::new();
    for b in blocks {
        match out.last_mut() {
            Some((start, len)) if *start + *len as u64 == b && *len < max_len => *len += 1,
            _ => out.push((b, 1)),
        }
    }
    out
}

/// Throttles a writer when dirty data exceeds the limit: flushes a
/// batch in the foreground, as the kernel's balance_dirty_pages does.
pub(crate) fn maybe_throttle(inner: &Inner, st: &mut State) {
    let dirty = st.cache.dirty_count(DirtyKind::Data);
    if dirty > inner.opts.dirty_limit_blocks {
        let excess = dirty - inner.opts.dirty_limit_blocks;
        flush_data(inner, st, excess + inner.opts.dirty_limit_blocks / 8);
    }
}

// ---------------------------------------------------------------------
// Read-ahead bookkeeping
// ---------------------------------------------------------------------

/// Returns the read-ahead window (in blocks) to fetch starting at
/// `fblock`, updating per-inode sequentiality state.
pub(crate) fn readahead_window(st: &mut State, ino: Ino, fblock: u64, max: u32) -> u32 {
    let ra = st.ra.entry(ino).or_insert(RaState {
        next_expected: u64::MAX,
        window: 1,
    });
    if fblock == ra.next_expected {
        ra.window = (ra.window * 2).min(max);
    } else if fblock != ra.next_expected {
        ra.window = 1;
    }
    ra.window
}

/// Records where the application's sequential stream now stands.
pub(crate) fn readahead_advance(st: &mut State, ino: Ino, next_fblock: u64) {
    if let Some(ra) = st.ra.get_mut(&ino) {
        ra.next_expected = next_fblock;
    }
}

/// Forgets read-ahead state (file closed or inode freed).
pub(crate) fn readahead_forget(st: &mut State, ino: Ino) {
    st.ra.remove(&ino);
}
