//! Integration tests: truncate semantics, crash recovery through the
//! journal, and rename cycle prevention.

use blockdev::MemDisk;
use ext3::{Ext3, Options, SetAttr};
use simkit::{Sim, SimDuration};
use std::rc::Rc;

#[test]
fn truncate_then_fsck_clean() {
    let sim = Sim::new(7);
    let disk = Rc::new(MemDisk::new("d0", 300_000));
    let fs = Ext3::mkfs(sim.clone(), disk.clone(), Options::default()).unwrap();
    let f = fs.create(fs.root(), "f", 0o644).unwrap();
    fs.write(f, 0, &vec![7u8; 50_000]).unwrap();
    fs.setattr(
        f,
        SetAttr {
            size: Some(100),
            ..SetAttr::default()
        },
    )
    .unwrap();
    let rep = fs.fsck().unwrap();
    println!("truncate: {rep}");
    assert!(rep.ok(), "{rep}");
}

#[test]
fn crash_recovery_replays_committed_txn() {
    let sim = Sim::new(7);
    let disk = Rc::new(MemDisk::new("d0", 300_000));
    let fs = Ext3::mkfs(sim.clone(), disk.clone(), Options::default()).unwrap();
    fs.mkdir(fs.root(), "committed", 0o755).unwrap();
    sim.advance(SimDuration::from_secs(6));
    println!(
        "commits after advance: {}",
        sim.counters().get("ext3.journal.commits")
    );
    fs.crash();
    drop(fs);
    let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
    println!("lookup: {:?}", fs2.lookup(fs2.root(), "committed"));
    let rep = fs2.fsck().unwrap();
    println!("fsck: {rep}");
    assert!(fs2.lookup(fs2.root(), "committed").is_ok());
}

#[test]
fn rename_into_own_subtree_rejected() {
    let sim = Sim::new(7);
    let disk = Rc::new(MemDisk::new("d0", 300_000));
    let fs = Ext3::mkfs(sim, disk, Options::default()).unwrap();
    let a = fs.mkdir(fs.root(), "a", 0o755).unwrap();
    let b = fs.mkdir(a, "b", 0o755).unwrap();
    let c = fs.mkdir(b, "c", 0o755).unwrap();
    // /a -> /a/b/c/a would create a cycle.
    assert_eq!(
        fs.rename(fs.root(), "a", c, "a2"),
        Err(ext3::FsError::InvalidArgument)
    );
    // Legal sibling moves still work.
    fs.rename(b, "c", a, "c_moved").unwrap();
    assert!(fs.fsck().unwrap().ok());
}

#[test]
fn file_size_boundaries_at_indirect_transitions() {
    // Exactly 12 blocks (all direct), 13 (first indirect), 12+1024
    // (last single-indirect), and one into the double indirect.
    let sim = Sim::new(11);
    let disk = Rc::new(MemDisk::new("d0", 300_000));
    let fs = Ext3::mkfs(sim, disk, Options::default()).unwrap();
    let bs = 4096u64;
    for (name, blocks) in [
        ("direct_full", 12u64),
        ("first_indirect", 13),
        ("last_single", 12 + 1024),
        ("into_double", 12 + 1024 + 1),
    ] {
        let f = fs.create(fs.root(), name, 0o644).unwrap();
        // Write one tagged byte into the final block.
        let last_off = (blocks - 1) * bs + 17;
        fs.write(f, last_off, &[0xEE]).unwrap();
        let attr = fs.getattr(f).unwrap();
        assert_eq!(attr.size, last_off + 1, "{name}");
        assert_eq!(fs.read(f, last_off, 1).unwrap(), vec![0xEE], "{name}");
        // Earlier holes read as zero.
        assert_eq!(fs.read(f, 0, 1).unwrap(), vec![0], "{name}");
    }
    assert!(fs.fsck().unwrap().ok());
}

#[test]
fn truncate_across_indirect_boundary_frees_pointer_blocks() {
    let sim = Sim::new(12);
    let disk = Rc::new(MemDisk::new("d0", 300_000));
    let fs = Ext3::mkfs(sim, disk, Options::default()).unwrap();
    let f = fs.create(fs.root(), "big", 0o644).unwrap();
    // 20 blocks: 12 direct + 8 through the single indirect.
    fs.write(f, 0, &vec![5u8; 20 * 4096]).unwrap();
    let before = fs.getattr(f).unwrap().nblocks;
    assert_eq!(before, 21, "20 data + 1 pointer block");
    fs.setattr(
        f,
        ext3::SetAttr {
            size: Some(10 * 4096),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        fs.getattr(f).unwrap().nblocks,
        10,
        "pointer block freed too"
    );
    assert!(fs.fsck().unwrap().ok());
}

#[test]
fn directory_grows_past_one_block_without_losing_entries() {
    // Regression: mkdir wrote back a parent inode copy loaded before
    // add_entry, clobbering the block pointer added when the directory
    // grew — every 204th subdirectory (4KB dirent block capacity for
    // short names) vanished. Thousand-entry directories are the normal
    // case for sharded topologies, so create enough entries to cross
    // several block boundaries and verify all survive sync + remount.
    let sim = Sim::new(3);
    let disk = Rc::new(MemDisk::new("d0", 300_000));
    let fs = Ext3::mkfs(sim.clone(), disk.clone(), Options::default()).unwrap();
    let n = 700u32; // > 3 blocks of "pmNNN"-sized dirents
    for i in 0..n {
        fs.mkdir(fs.root(), &format!("pm{i}"), 0o755).unwrap();
    }
    for i in 0..n {
        fs.lookup(fs.root(), &format!("pm{i}"))
            .unwrap_or_else(|e| panic!("pre-sync lookup pm{i}: {e:?}"));
    }
    sim.advance(SimDuration::from_secs(6));
    fs.sync().unwrap();
    assert!(fs.fsck().unwrap().ok());
    drop(fs);
    let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
    for i in 0..n {
        fs2.lookup(fs2.root(), &format!("pm{i}"))
            .unwrap_or_else(|e| panic!("post-remount lookup pm{i}: {e:?}"));
    }
    assert_eq!(fs2.readdir(fs2.root()).unwrap().len() as u32, n + 2);
}
