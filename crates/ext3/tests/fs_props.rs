//! Property tests for the file system: a random operation sequence is
//! mirrored against an in-memory model; afterwards the tree must match
//! the model, `fsck` must pass, and the state must survive
//! unmount/remount. A crash variant checks that journal replay always
//! yields a consistent (if possibly older) tree.

use blockdev::MemDisk;
use ext3::{Ext3, FsError, Options, SetAttr};
use proptest::prelude::*;
use simkit::{Sim, SimDuration};
use std::collections::HashMap;
use std::rc::Rc;

/// Operations the generator draws from. Names index a small pool so
/// collisions (Exists/NotFound paths) are exercised too.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(u8, u16, u8),
    Truncate(u8, u16),
    Unlink(u8),
    Mkdir(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Chmod(u8, u16),
    Advance(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Create),
        (0u8..12, 0u16..20_000, 0u8..255).prop_map(|(f, o, b)| Op::Write(f, o, b)),
        (0u8..12, 0u16..20_000).prop_map(|(f, s)| Op::Truncate(f, s)),
        (0u8..12).prop_map(Op::Unlink),
        (0u8..6).prop_map(Op::Mkdir),
        (0u8..6).prop_map(Op::Rmdir),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Rename(a, b)),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Link(a, b)),
        (0u8..12, 0u16..0o777).prop_map(|(f, m)| Op::Chmod(f, m)),
        (1u8..10).prop_map(Op::Advance),
    ]
}

#[derive(Debug, Default, Clone)]
struct Model {
    /// name -> content (files; hard links share via a second map).
    files: HashMap<String, Vec<u8>>,
    dirs: HashMap<String, ()>,
}

fn fname(i: u8) -> String {
    format!("f{i}")
}
fn dname(i: u8) -> String {
    format!("sub{i}")
}

fn apply(fs: &Ext3, model: &mut Model, sim: &Rc<Sim>, op: &Op) {
    let root = fs.root();
    match op {
        Op::Create(f) => {
            let name = fname(*f);
            let r = fs.create(root, &name, 0o644);
            if let std::collections::hash_map::Entry::Vacant(e) = model.files.entry(name) {
                r.unwrap();
                e.insert(Vec::new());
            } else {
                assert_eq!(r, Err(FsError::Exists));
            }
        }
        Op::Write(f, off, byte) => {
            let name = fname(*f);
            if let Some(content) = model.files.get_mut(&name) {
                let ino = fs.lookup(root, &name).unwrap();
                let data = vec![*byte; 100];
                fs.write(ino, *off as u64, &data).unwrap();
                let end = *off as usize + 100;
                if content.len() < end {
                    content.resize(end, 0);
                }
                content[*off as usize..end].copy_from_slice(&data);
            }
        }
        Op::Truncate(f, size) => {
            let name = fname(*f);
            if model.files.contains_key(&name) {
                let ino = fs.lookup(root, &name).unwrap();
                fs.setattr(
                    ino,
                    SetAttr {
                        size: Some(*size as u64),
                        ..SetAttr::default()
                    },
                )
                .unwrap();
                model
                    .files
                    .get_mut(&name)
                    .unwrap()
                    .resize(*size as usize, 0);
            }
        }
        Op::Unlink(f) => {
            let name = fname(*f);
            let r = fs.unlink(root, &name);
            if model.files.remove(&name).is_some() {
                r.unwrap();
            } else {
                assert!(r.is_err());
            }
        }
        Op::Mkdir(d) => {
            let name = dname(*d);
            let r = fs.mkdir(root, &name, 0o755);
            if let std::collections::hash_map::Entry::Vacant(e) = model.dirs.entry(name) {
                r.unwrap();
                e.insert(());
            } else {
                assert_eq!(r, Err(FsError::Exists));
            }
        }
        Op::Rmdir(d) => {
            let name = dname(*d);
            let r = fs.rmdir(root, &name);
            if model.dirs.remove(&name).is_some() {
                r.unwrap();
            } else {
                assert!(r.is_err());
            }
        }
        Op::Rename(a, b) => {
            let (an, bn) = (fname(*a), fname(*b));
            let r = fs.rename(root, &an, root, &bn);
            if let Some(content) = model.files.get(&an).cloned() {
                if a == b {
                    r.unwrap();
                } else {
                    r.unwrap();
                    model.files.remove(&an);
                    model.files.insert(bn, content);
                }
            } else {
                assert!(r.is_err());
            }
        }
        Op::Link(a, b) => {
            let (an, bn) = (fname(*a), fname(*b));
            if model.files.contains_key(&an) && !model.files.contains_key(&bn) {
                let ino = fs.lookup(root, &an).unwrap();
                fs.link(root, &bn, ino).unwrap();
                // Model treats links as snapshots; subsequent writes
                // through either name keep them in sync only if we
                // model aliasing — keep it simple: writes to a name
                // update both when inodes match is NOT modeled, so
                // remove the alias before divergence can happen by
                // unlinking the new name again.
                fs.unlink(root, &bn).unwrap();
            }
        }
        Op::Chmod(f, mode) => {
            let name = fname(*f);
            if model.files.contains_key(&name) {
                let ino = fs.lookup(root, &name).unwrap();
                let a = fs
                    .setattr(
                        ino,
                        SetAttr {
                            perm: Some(*mode),
                            ..SetAttr::default()
                        },
                    )
                    .unwrap();
                assert_eq!(a.perm, mode & 0o7777);
            }
        }
        Op::Advance(s) => {
            sim.advance(SimDuration::from_secs(*s as u64));
        }
    }
}

fn check_against_model(fs: &Ext3, model: &Model) {
    let root = fs.root();
    // Every model object exists with the right content.
    for (name, content) in &model.files {
        let ino = fs
            .lookup(root, name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let attr = fs.getattr(ino).unwrap();
        assert_eq!(attr.size, content.len() as u64, "{name}");
        let got = fs.read(ino, 0, content.len().max(1)).unwrap();
        assert_eq!(&got, content, "{name}");
    }
    for name in model.dirs.keys() {
        fs.lookup(root, name).unwrap();
    }
    // And nothing else does.
    let listed: Vec<String> = fs
        .readdir(root)
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .filter(|n| n != "." && n != "..")
        .collect();
    assert_eq!(
        listed.len(),
        model.files.len() + model.dirs.len(),
        "directory contents diverge: {listed:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random operation sequences keep the tree equal to the model,
    /// fsck-clean, and durable across unmount/remount.
    #[test]
    fn matches_model_and_survives_remount(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1000,
    ) {
        let sim = Sim::new(seed);
        let disk = Rc::new(MemDisk::new("d", 300_000));
        let fs = Ext3::mkfs(sim.clone(), disk.clone(), Options::default()).unwrap();
        let mut model = Model::default();
        for op in &ops {
            apply(&fs, &mut model, &sim, op);
        }
        check_against_model(&fs, &model);
        let report = fs.fsck().unwrap();
        prop_assert!(report.ok(), "{report}");
        fs.unmount().unwrap();
        let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
        check_against_model(&fs2, &model);
        prop_assert!(fs2.fsck().unwrap().ok());
    }

    /// Crashing at an arbitrary point never leaves an inconsistent
    /// volume: journal replay restores a clean (possibly older) tree.
    #[test]
    fn crash_replay_is_always_consistent(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1000,
    ) {
        let sim = Sim::new(seed);
        let disk = Rc::new(MemDisk::new("d", 300_000));
        let fs = Ext3::mkfs(sim.clone(), disk.clone(), Options::default()).unwrap();
        let mut model = Model::default();
        for op in &ops {
            apply(&fs, &mut model, &sim, op);
        }
        fs.crash();
        drop(fs);
        let fs2 = Ext3::mount(sim, disk, Options::default()).unwrap();
        let report = fs2.fsck().unwrap();
        prop_assert!(report.ok(), "after crash: {report}");
    }
}
