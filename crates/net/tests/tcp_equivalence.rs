//! Pipe ↔ TCP equivalence: on an uncongested link, a single
//! TCP-modeled connection must charge exactly what the closed-form
//! pipe charges, so switching [`net::TransportModel`] never moves a
//! number except where congestion is the point. These tests pin the
//! contract stated in `net::tcp`'s module docs: a transfer that fits
//! in one congestion window completes at the last in-order data
//! arrival, `rtt/2 + serialize(payload + nsegs·hdr)`.

use net::tcp::MSS;
use net::{LinkParams, Network, Transport, TransportModel};
use simkit::units::Bytes;
use simkit::{Sim, SimDuration};

fn pipe_net() -> std::rc::Rc<Network> {
    Network::new(Sim::new(11), LinkParams::gigabit_lan())
}

fn tcp_net(connections: u32) -> std::rc::Rc<Network> {
    let link = LinkParams::gigabit_lan().with_transport(TransportModel::Tcp { connections });
    Network::new(Sim::new(11), link)
}

/// A request/response exchange whose legs each fit one segment costs
/// the same to the nanosecond under both models.
#[test]
fn single_segment_round_trip_matches_pipe_exactly() {
    for (req, resp) in [(1, 1), (128, 8192_u64.min(MSS)), (MSS, MSS)] {
        let pipe = pipe_net()
            .channel("rpc", Transport::Tcp)
            .round_trip(Bytes::new(req), Bytes::new(resp));
        let tcp = tcp_net(1)
            .channel("rpc", Transport::Tcp)
            .round_trip(Bytes::new(req), Bytes::new(resp));
        assert_eq!(
            pipe, tcp,
            "uncongested single-segment round_trip must be byte-identical \
             (req={req}, resp={resp})"
        );
    }
}

/// A streamed transfer that fits the initial congestion window and is
/// framed at the MSS costs the same to the nanosecond: only the first
/// segment pays propagation, the rest pay pure serialization.
#[test]
fn window_fitting_stream_matches_pipe_exactly() {
    // 8 segments < IW10, framed exactly at the MSS.
    let bytes = 8 * MSS;
    let nmsgs = 8;
    let pipe = pipe_net()
        .channel("data", Transport::Tcp)
        .stream(Bytes::new(bytes), nmsgs);
    let tcp = tcp_net(1)
        .channel("data", Transport::Tcp)
        .stream(Bytes::new(bytes), nmsgs);
    assert_eq!(pipe, tcp, "window-fitting stream must be byte-identical");
}

/// Beyond one window the TCP model pays real window-growth RTTs the
/// pipe never sees: strictly slower, but still loss-free while every
/// burst fits the bottleneck buffer (no retransmit counters appear).
#[test]
fn multi_window_stream_is_slower_but_lossless() {
    // Two slow-start rounds: a 10-segment burst, then the remaining
    // 14 — both under QUEUE_CAP_SEGMENTS, so nothing can drop.
    let bytes = 24 * MSS;
    let nmsgs = 24;
    let pipe = pipe_net()
        .channel("data", Transport::Tcp)
        .stream(Bytes::new(bytes), nmsgs);
    let sim = Sim::new(11);
    let link = LinkParams::gigabit_lan().with_transport(TransportModel::Tcp { connections: 1 });
    let netw = Network::new(sim.clone(), link);
    let tcp = netw
        .channel("data", Transport::Tcp)
        .stream(Bytes::new(bytes), nmsgs);
    assert!(
        tcp > pipe,
        "multi-window transfer must pay slow-start RTTs: pipe {pipe:?}, tcp {tcp:?}"
    );
    // Growth costs at most a handful of RTTs on top of the pipe time.
    let p = LinkParams::gigabit_lan();
    assert!(
        tcp < pipe + SimDuration::from_nanos(p.rtt.as_nanos() * 8),
        "uncongested growth overhead stays within a few RTTs: pipe {pipe:?}, tcp {tcp:?}"
    );
    assert_eq!(
        sim.counters().get("net.tcp.retx_segs"),
        0,
        "an uncongested link never drops"
    );
}

/// The byte/message books are model-independent: the framing drives
/// accounting, the transport model only drives timing.
#[test]
fn accounting_is_model_independent() {
    let run = |netw: std::rc::Rc<Network>| {
        let ch = netw.channel("x", Transport::Tcp);
        ch.round_trip(Bytes::new(500), Bytes::new(9000));
        // Fits the initial window per flow, so the TCP side moves no
        // recovery traffic: the books must match to the byte. (A
        // congested transfer legitimately adds retransmitted wire
        // bytes, which is covered by the congestion tests.)
        ch.stream(Bytes::new(8 * MSS), 8);
        let c = netw.sim().counters();
        (c.get("net.x.msgs"), c.get("net.x.bytes"))
    };
    assert_eq!(run(pipe_net()), run(tcp_net(4)));
}

/// Selecting the pipe renders `LinkParams` exactly as it did before
/// the TCP model existed, so every `{:?}`-keyed snapshot and golden
/// stays byte-identical with the model merely compiled in.
#[test]
fn pipe_debug_format_hides_the_transport_field() {
    let p = LinkParams::gigabit_lan();
    assert!(
        !format!("{p:?}").contains("transport"),
        "Pipe must be invisible in Debug output: {p:?}"
    );
    let t = p.with_transport(TransportModel::Tcp { connections: 2 });
    assert!(
        format!("{t:?}").contains("transport"),
        "Tcp selection must be visible in Debug output: {t:?}"
    );
}
