//! Concurrency model test for the thread-safe [`net::Sniffer`]
//! (`cargo test -p net --features loom`): the Mutex/atomic capture
//! path must neither lose nor double-count a message under any
//! explored schedule, and the bounded buffer must never exceed its
//! capacity — the invariant behind trusting per-channel summaries
//! even if parallel sweep cells ever shared one tap.
#![cfg(feature = "loom")]

use loom::sync::Arc;
use net::Sniffer;
use simkit::units::Bytes;
use simkit::SimTime;

#[test]
fn concurrent_appends_account_every_message_exactly_once() {
    loom::model(|| {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 64;
        const CAP: usize = 100;
        let s = Arc::new(Sniffer::default());
        s.set_enabled(true);
        s.set_capacity(CAP);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                loom::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        if i == PER_THREAD / 2 {
                            loom::hint::interleave();
                        }
                        s.observe(
                            SimTime::from_nanos(t * PER_THREAD + i),
                            "nfs",
                            Bytes::new(64),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = THREADS * PER_THREAD;
        assert_eq!(s.len(), CAP, "buffer fills exactly to capacity");
        assert_eq!(s.dropped(), total - CAP as u64);
        let sum = s.summary();
        assert_eq!(
            sum["nfs"].messages + sum["nfs"].dropped,
            total,
            "captured + dropped covers every observe exactly once"
        );
        assert_eq!(sum["nfs"].bytes, Bytes::new(CAP as u64 * 64));
    });
}

#[test]
fn capacity_zero_drops_everything_without_capturing() {
    loom::model(|| {
        let s = Arc::new(Sniffer::default());
        s.set_enabled(true);
        s.set_capacity(0);
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let s = Arc::clone(&s);
                loom::thread::spawn(move || {
                    for i in 0..16u64 {
                        s.observe(SimTime::from_nanos(t * 16 + i), "iscsi", Bytes::new(8));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.dropped(), 32);
    });
}
