//! Congestion-aware TCP flow model for [`Channel`](crate::Channel)s.
//!
//! The legacy transport ([`TransportModel::Pipe`]) treats the link as a
//! fixed-bandwidth pipe: every transfer costs a closed-form
//! `rtt/2 + serialize(bytes)` and congestion cannot happen. This module
//! is the opt-in alternative ([`TransportModel::Tcp`]): transfers are
//! segmented at the TCP MSS and pushed through per-connection
//! congestion windows (slow start, AIMD, fast retransmit on a triple
//! duplicate ACK, retransmission timeout on loss) into a shared-link
//! FIFO queue whose occupancy induces RTT and whose finite capacity
//! induces loss. Segment completions are scheduled on a
//! [`simkit::EventQueue`] keyed by `(time, host, seq)` — the same
//! total order as the rest of the event core (detlint rule D6) — so
//! the model is deterministic and needs no randomness: the only loss
//! is deterministic tail drop when a window burst overruns the queue.
//!
//! # Queue-induced RTT contract
//!
//! Each [`TcpLink`] direction is a FIFO with a serialization server:
//! a segment offered at `now` starts serializing once every segment
//! present at `now` has drained, and departs after its own
//! serialization time. The wait behind those k queued segments *is*
//! the queueing delay — exactly how NISTNet-style added RTT arises on
//! a congested bottleneck. A segment is tail-dropped when
//! [`QUEUE_CAP_SEGMENTS`] segments already occupy the queue at its
//! arrival; dropped segments vanish and are recovered by the flow's
//! fast-retransmit or RTO machinery, never by the caller.
//!
//! # What completes a transfer
//!
//! A transfer completes when the *receiver* holds every byte in order
//! — the last in-order data arrival, not the final ACK. An uncongested
//! transfer that fits in one congestion window therefore costs exactly
//! `serialize(payload + nsegs·hdr) + rtt/2`, the pipe closed form,
//! which is what the Pipe↔Tcp equivalence tests pin down.
//!
//! # MC/S and nconnect
//!
//! A [`TcpEndpoint`] owns `connections` independent flows over the
//! shared link. Request/response exchanges pick one flow round-robin
//! and keep both legs on it (iSCSI's per-connection allegiance; an RPC
//! retransmit naturally goes out the *next* flow, nconnect-style).
//! Bulk data phases stripe their segments across every flow
//! (`transfer_striped`), which is how iSCSI MC/S data-out/data-in
//! bursts use the aggregate window of the whole session.

use crate::LinkParams;
use simkit::units::{self, Bytes};
use simkit::{EventId, EventQueue, HostId, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// TCP maximum segment size: payload bytes carried per segment
/// (Ethernet MTU 1500 minus 40 bytes of IP+TCP header).
pub const MSS: u64 = 1460;

/// Wire overhead per segment; matches
/// [`Transport::Tcp.header_bytes()`](crate::Transport::header_bytes)
/// so single-segment exchanges cost exactly what the pipe model
/// charges for one message.
pub const SEGMENT_HEADER_BYTES: u64 = 66;

/// Bottleneck queue capacity in full-size segments per direction
/// (~48 KiB — the shallow per-port buffer of paper-era edge gear).
/// A window burst beyond the bandwidth-delay product plus this
/// backlog is tail-dropped.
pub const QUEUE_CAP_SEGMENTS: usize = 32;

/// Initial congestion window in segments (RFC 6928's IW10).
const INITIAL_CWND: f64 = 10.0;

/// Duplicate-ACK count that triggers fast retransmit.
const DUP_ACK_THRESHOLD: u32 = 3;

/// Conservative initial retransmission timeout (RFC 6298).
const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);

/// Lower bound on the flow RTO (Linux's 200 ms floor).
const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Upper bound on the backed-off flow RTO.
const MAX_RTO: SimDuration = SimDuration::from_secs(60);

/// How a channel's timing is modeled: the legacy closed-form pipe
/// (default, byte-identical to every golden) or event-scheduled TCP
/// flows with congestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportModel {
    /// Fixed-bandwidth pipe with static RTT; transfers cost
    /// `rtt/2 + serialize(bytes)` and never queue or drop.
    #[default]
    Pipe,
    /// Event-scheduled TCP flows over a shared finite queue.
    Tcp {
        /// Connections per endpoint: iSCSI MC/S sessions and NFS
        /// nconnect mounts open this many flows (minimum 1).
        connections: u32,
    },
}

impl TransportModel {
    /// Whether the congestion-aware model is selected.
    pub fn is_tcp(self) -> bool {
        matches!(self, TransportModel::Tcp { .. })
    }

    /// Flows per endpoint under this model (1 for the pipe).
    pub fn connections(self) -> u32 {
        match self {
            TransportModel::Pipe => 1,
            TransportModel::Tcp { connections } => connections.max(1),
        }
    }
}

/// Direction of a transfer over the shared link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server (requests, data-out).
    Up,
    /// Server → client (responses, data-in).
    Down,
}

/// One direction of the bottleneck: a FIFO serialization server with
/// finite capacity. Interior mutability mirrors [`crate::Network`]'s
/// Cell-based link parameters.
///
/// Occupancy is tracked per segment as `(arrival, departure)` pairs
/// rather than a single busy-until frontier. Offers are not
/// monotonic in time: the cost-returning simulation style issues
/// concurrent requests at one frozen instant while an earlier
/// transfer's loss recovery has already placed segments seconds
/// ahead. A frontier would let those future segments inflate the
/// backlog seen *at the frozen instant* (and vice versa), cascading
/// into spurious total loss; counting only the segments actually
/// present at the offer's arrival time keeps the two timelines from
/// poisoning each other.
#[derive(Debug)]
pub struct LinkQueue {
    cap_segments: usize,
    /// Accepted segments possibly still queued, pruned once a later
    /// offer shows they have drained. Present-set size is bounded by
    /// `cap_segments`, so scans stay cheap.
    queued: RefCell<Vec<(SimTime, SimTime)>>,
    drops: Cell<u64>,
}

impl LinkQueue {
    fn new(cap_segments: usize) -> Self {
        LinkQueue {
            cap_segments,
            queued: RefCell::new(Vec::new()),
            drops: Cell::new(0),
        }
    }

    /// Offers one segment needing `ser` of serialization at `now`.
    /// Returns the departure instant, or `None` when `cap_segments`
    /// segments already occupy the queue at `now` and this one is
    /// tail-dropped.
    fn offer(&self, now: SimTime, ser: SimDuration) -> Option<SimTime> {
        let mut q = self.queued.borrow_mut();
        q.retain(|&(_, depart)| depart > now);
        // Occupancy at `now`: segments that arrived by `now` and have
        // not departed. Later arrivals (a retransmission computed
        // ahead of this offer) are not ahead of this segment.
        let mut occupied = 0usize;
        let mut frontier = now;
        for &(arrival, depart) in q.iter() {
            if arrival <= now {
                occupied += 1;
                if depart > frontier {
                    frontier = depart;
                }
            }
        }
        if occupied >= self.cap_segments {
            self.drops.set(self.drops.get() + 1);
            return None;
        }
        let depart = frontier + ser;
        q.push((now, depart));
        Some(depart)
    }

    /// Queueing delay a segment offered at `now` would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.queued
            .borrow()
            .iter()
            .filter(|&&(arrival, _)| arrival <= now)
            .map(|&(_, depart)| depart)
            .max()
            .map_or(SimDuration::ZERO, |d| d.saturating_since(now))
    }

    /// Segments tail-dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops.get()
    }
}

/// The shared bottleneck: one queue per direction. A point-to-point
/// [`Network`](crate::Network) owns its own link; a
/// [`Fabric`](crate::Fabric) shares one `TcpLink` across every host
/// endpoint, so all clients contend for the same server port queue.
#[derive(Debug)]
pub struct TcpLink {
    up: LinkQueue,
    down: LinkQueue,
}

impl TcpLink {
    /// A fresh idle link with the default queue capacity.
    pub fn new() -> Rc<Self> {
        Rc::new(TcpLink {
            up: LinkQueue::new(QUEUE_CAP_SEGMENTS),
            down: LinkQueue::new(QUEUE_CAP_SEGMENTS),
        })
    }

    /// The queue serving `dir`.
    pub fn queue(&self, dir: Direction) -> &LinkQueue {
        match dir {
            Direction::Up => &self.up,
            Direction::Down => &self.down,
        }
    }

    /// Total tail drops across both directions.
    pub fn drops(&self) -> u64 {
        self.up.drops() + self.down.drops()
    }
}

/// Persistent congestion state of one connection. Survives across
/// transfers: a flow that just recovered from loss starts the next
/// RPC with its reduced window, which is where multi-RTT replies (and
/// hence emergent RPC retransmits) come from.
#[derive(Debug)]
struct FlowState {
    /// Congestion window, in segments. Fractional growth implements
    /// congestion avoidance's +1/cwnd per ACK.
    cwnd: Cell<f64>,
    /// Slow-start threshold, in segments.
    ssthresh: Cell<f64>,
    /// Smoothed RTT estimate, nanoseconds (0 = no sample yet).
    srtt: Cell<u64>,
    /// RTT variance estimate, nanoseconds.
    rttvar: Cell<u64>,
    /// Current retransmission timeout, with exponential backoff.
    rto: Cell<SimDuration>,
    /// Lifetime retransmitted segments on this flow.
    retrans: Cell<u64>,
}

impl FlowState {
    fn new() -> Self {
        FlowState {
            cwnd: Cell::new(INITIAL_CWND),
            ssthresh: Cell::new(f64::MAX),
            srtt: Cell::new(0),
            rttvar: Cell::new(0),
            rto: Cell::new(INITIAL_RTO),
            retrans: Cell::new(0),
        }
    }

    /// RFC 6298 estimator update from one clean (never-retransmitted,
    /// Karn's rule) sample.
    fn rtt_sample(&self, sample_ns: u64) {
        if self.srtt.get() == 0 {
            self.srtt.set(sample_ns);
            self.rttvar.set(sample_ns / 2);
        } else {
            let srtt = self.srtt.get();
            let var = self.rttvar.get();
            let err = srtt.abs_diff(sample_ns);
            self.rttvar.set((3 * var + err) / 4);
            self.srtt.set((7 * srtt + sample_ns) / 8);
        }
        let rto = SimDuration::from_nanos(self.srtt.get() + 4 * self.rttvar.get().max(1));
        self.rto.set(rto.max(MIN_RTO).min(MAX_RTO));
    }

    /// Multiplicative decrease on any loss signal: halve the flight,
    /// floor at two segments.
    fn on_loss(&self, flight_segments: u64) {
        let half = (units::to_f64(flight_segments) / 2.0).max(2.0);
        self.ssthresh.set(half);
    }
}

/// Aggregate outcome of one modeled transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Transfer {
    /// Time from the offer until the receiver holds every byte in
    /// order.
    pub duration: SimDuration,
    /// Data segments the transfer was cut into (first transmissions).
    pub segments: u64,
    /// Segments transmitted more than once.
    pub retrans_segments: u64,
    /// Wire bytes of those retransmissions (payload + headers).
    pub retrans_bytes: Bytes,
    /// Duplicate ACKs the sender processed.
    pub dup_acks: u64,
}

/// Per-transfer sender+receiver bookkeeping for one participating
/// flow. The congestion window and RTO estimator live in the
/// persistent [`FlowState`]; everything here is scoped to a single
/// transfer.
struct Sender {
    /// Index into `TcpEndpoint::flows`.
    flow: usize,
    /// Payload bytes of each segment assigned to this flow.
    segs: Vec<u64>,
    /// Transmission count per segment (Karn's rule needs it).
    sent: Vec<u32>,
    /// Last transmission instant per segment.
    sent_at: Vec<SimTime>,
    /// Receiver-side: which segments have arrived (possibly out of
    /// order).
    recvd: Vec<bool>,
    /// Receiver-side in-order high-water mark.
    cum: usize,
    /// Sender-side cumulative-ACK knowledge.
    acked: usize,
    /// Next never-sent segment.
    next: usize,
    /// Consecutive duplicate ACKs seen.
    dup: u32,
    /// Loss recovery (fast retransmit or RTO) is in progress until
    /// `acked` passes this mark; partial ACKs below it retransmit the
    /// next hole immediately (NewReno-style).
    recover: Option<usize>,
    /// Armed RTO timer, if any.
    rto_ev: Option<EventId>,
    /// Receiver has everything in order.
    done: bool,
}

/// Transfer-engine events, keyed on the local event queue by
/// `(absolute time, HostId::client(sender), seq)`.
enum Ev {
    /// Data segment `seq` of sender `s` fully arrived at the receiver.
    Arrive { s: usize, seq: usize },
    /// Cumulative ACK reached the sender. `echo` is the segment whose
    /// arrival generated it and `echo_tx` that segment's transmission
    /// count at the time (Karn's rule: sample RTT only when both are
    /// still 1 at processing time).
    Ack {
        s: usize,
        cum: usize,
        echo: usize,
        echo_tx: u32,
    },
    /// Retransmission timer of sender `s` fired.
    Rto { s: usize },
}

/// One channel's set of TCP connections over a shared [`TcpLink`].
#[derive(Debug)]
pub struct TcpEndpoint {
    link: Rc<TcpLink>,
    flows: Vec<FlowState>,
    rr: Cell<usize>,
    retrans_total: Cell<u64>,
    dup_acks_total: Cell<u64>,
}

impl TcpEndpoint {
    /// Opens `connections` flows (minimum 1) over `link`.
    pub fn new(link: Rc<TcpLink>, connections: u32) -> Self {
        let n = connections.max(1) as usize;
        TcpEndpoint {
            link,
            flows: (0..n).map(|_| FlowState::new()).collect(),
            rr: Cell::new(0),
            retrans_total: Cell::new(0),
            dup_acks_total: Cell::new(0),
        }
    }

    /// Number of connections.
    pub fn connections(&self) -> u32 {
        self.flows.len() as u32
    }

    /// The shared link this endpoint sends over.
    pub fn link(&self) -> &Rc<TcpLink> {
        &self.link
    }

    /// Lifetime retransmitted segments across all flows.
    pub fn retrans_segments(&self) -> u64 {
        self.retrans_total.get()
    }

    /// Lifetime duplicate ACKs across all flows.
    pub fn dup_acks(&self) -> u64 {
        self.dup_acks_total.get()
    }

    /// Picks the next flow round-robin (one pick per exchange: both
    /// legs of a request/response ride the same connection).
    pub fn next_flow(&self) -> usize {
        let f = self.rr.get();
        self.rr.set((f + 1) % self.flows.len());
        f
    }

    /// Current smoothed RTT of `flow`, if it has a sample.
    pub fn flow_srtt(&self, flow: usize) -> Option<SimDuration> {
        let ns = self.flows[flow].srtt.get();
        (ns > 0).then(|| SimDuration::from_nanos(ns))
    }

    /// Models `bytes` of payload moving in `dir` on a single flow.
    pub fn transfer_on(
        &self,
        p: &LinkParams,
        now: SimTime,
        bytes: Bytes,
        dir: Direction,
        flow: usize,
    ) -> Transfer {
        self.run(p, now, bytes, dir, &[flow])
    }

    /// Models `bytes` striped across every flow of the endpoint (MC/S
    /// data phases, multi-flow streams).
    pub fn transfer_striped(
        &self,
        p: &LinkParams,
        now: SimTime,
        bytes: Bytes,
        dir: Direction,
    ) -> Transfer {
        let all: Vec<usize> = (0..self.flows.len()).collect();
        self.run(p, now, bytes, dir, &all)
    }

    /// The discrete-event transfer engine. Cuts `bytes` into MSS
    /// segments, deals them round-robin to the participating `flows`,
    /// and drives every flow's window against the shared queue until
    /// the receiver holds all bytes in order.
    fn run(
        &self,
        p: &LinkParams,
        now: SimTime,
        bytes: Bytes,
        dir: Direction,
        flows: &[usize],
    ) -> Transfer {
        // Segment arithmetic below is raw nanosecond/byte math; the
        // dimension boundary is this function's signature.
        let bytes = bytes.get();
        let queue = self.link.queue(dir);
        let half_rtt = p.rtt / 2;
        let nsegs = bytes.div_ceil(MSS).max(1) as usize;

        // Deal segments to flows: segment i has MSS payload except the
        // last, which carries the remainder (or all of a sub-MSS
        // transfer, including 0-payload control exchanges).
        let mut senders: Vec<Sender> = flows
            .iter()
            .map(|&flow| Sender {
                flow,
                segs: Vec::new(),
                sent: Vec::new(),
                sent_at: Vec::new(),
                recvd: Vec::new(),
                cum: 0,
                acked: 0,
                next: 0,
                dup: 0,
                recover: None,
                rto_ev: None,
                done: false,
            })
            .collect();
        for i in 0..nsegs {
            let payload = if i + 1 == nsegs {
                bytes - MSS * (nsegs as u64 - 1)
            } else {
                MSS
            };
            let stripe = i % senders.len();
            let s = &mut senders[stripe];
            s.segs.push(payload);
            s.sent.push(0);
            s.sent_at.push(now);
            s.recvd.push(false);
        }
        // A striped transfer smaller than the stripe width leaves some
        // flows idle; they are born done.
        for s in &mut senders {
            s.done = s.segs.is_empty();
        }

        let mut q: EventQueue<Ev> = EventQueue::with_capacity(nsegs * 2);
        let mut out = Transfer {
            segments: nsegs as u64,
            ..Transfer::default()
        };
        let mut done_at = now;

        // Transmits segment `seq` of sender `s` (first time or
        // retransmission) into the queue.
        macro_rules! transmit {
            ($s:expr, $seq:expr, $t:expr) => {{
                let snd = &mut senders[$s];
                let seq: usize = $seq;
                let t: SimTime = $t;
                let wire = snd.segs[seq] + SEGMENT_HEADER_BYTES;
                snd.sent[seq] += 1;
                snd.sent_at[seq] = t;
                if snd.sent[seq] > 1 {
                    out.retrans_segments += 1;
                    out.retrans_bytes += Bytes::new(wire);
                    self.flows[snd.flow]
                        .retrans
                        .set(self.flows[snd.flow].retrans.get() + 1);
                }
                if let Some(depart) = queue.offer(t, p.serialize(Bytes::new(wire))) {
                    q.schedule(
                        depart + half_rtt,
                        HostId::client($s as u32),
                        Ev::Arrive { s: $s, seq },
                    );
                }
                // A drop simply vanishes: the window stays charged and
                // the RTO/fast-retransmit machinery recovers it.
            }};
        }

        // (Re-)arms sender `s`'s RTO at `t + rto`.
        macro_rules! arm_rto {
            ($s:expr, $t:expr) => {{
                let rto = self.flows[senders[$s].flow].rto.get();
                if let Some(id) = senders[$s].rto_ev.take() {
                    q.cancel(id);
                }
                senders[$s].rto_ev =
                    Some(q.schedule($t + rto, HostId::client($s as u32), Ev::Rto { s: $s }));
            }};
        }

        // Sends as much of sender `s`'s tail as its window allows.
        macro_rules! try_send {
            ($s:expr, $t:expr) => {{
                loop {
                    let snd = &senders[$s];
                    let window = self.flows[snd.flow].cwnd.get().max(1.0) as usize;
                    if snd.next >= snd.segs.len() || snd.next - snd.acked >= window {
                        break;
                    }
                    let seq = snd.next;
                    senders[$s].next += 1;
                    transmit!($s, seq, $t);
                }
                if senders[$s].rto_ev.is_none() && senders[$s].acked < senders[$s].segs.len() {
                    arm_rto!($s, $t);
                }
            }};
        }

        // Indexed loop: `try_send!` borrows `senders` mutably, so no
        // iterator may hold it across the macro body.
        #[allow(clippy::needless_range_loop)]
        for s in 0..senders.len() {
            if !senders[s].done {
                try_send!(s, now);
            }
        }

        while let Some((key, ev)) = q.pop() {
            let t = key.time;
            match ev {
                Ev::Arrive { s, seq } => {
                    let snd = &mut senders[s];
                    if !snd.recvd[seq] {
                        snd.recvd[seq] = true;
                        while snd.cum < snd.recvd.len() && snd.recvd[snd.cum] {
                            snd.cum += 1;
                        }
                    }
                    if snd.cum == snd.segs.len() && !snd.done {
                        snd.done = true;
                        done_at = done_at.max(t);
                    }
                    let (cum, echo_tx) = (snd.cum, snd.sent[seq]);
                    q.schedule(
                        t + half_rtt,
                        HostId::client(s as u32),
                        Ev::Ack {
                            s,
                            cum,
                            echo: seq,
                            echo_tx,
                        },
                    );
                    if senders.iter().all(|s| s.done) {
                        break;
                    }
                }
                Ev::Ack {
                    s,
                    cum,
                    echo,
                    echo_tx,
                } => {
                    let fl = &self.flows[senders[s].flow];
                    if cum > senders[s].acked {
                        let newly = (cum - senders[s].acked) as u64;
                        senders[s].acked = cum;
                        senders[s].dup = 0;
                        // Karn: sample only a segment transmitted
                        // exactly once, and unretransmitted since.
                        if echo_tx == 1 && senders[s].sent[echo] == 1 {
                            fl.rtt_sample(t.since(senders[s].sent_at[echo]).as_nanos());
                        }
                        match senders[s].recover {
                            Some(mark) if cum < mark => {
                                // Partial ACK during recovery: the
                                // next hole is also lost — resend it
                                // now instead of waiting out an RTO.
                                let hole = senders[s].acked;
                                transmit!(s, hole, t);
                            }
                            Some(_) => {
                                senders[s].recover = None;
                                fl.cwnd.set(fl.ssthresh.get().max(2.0));
                            }
                            None => {
                                for _ in 0..newly {
                                    let c = fl.cwnd.get();
                                    if c < fl.ssthresh.get() {
                                        fl.cwnd.set(c + 1.0);
                                    } else {
                                        fl.cwnd.set(c + 1.0 / c);
                                    }
                                }
                            }
                        }
                        if senders[s].acked < senders[s].segs.len() {
                            arm_rto!(s, t);
                        } else if let Some(id) = senders[s].rto_ev.take() {
                            q.cancel(id);
                        }
                        try_send!(s, t);
                    } else if senders[s].acked < senders[s].segs.len() {
                        senders[s].dup += 1;
                        out.dup_acks += 1;
                        if senders[s].dup == DUP_ACK_THRESHOLD && senders[s].recover.is_none() {
                            let flight = (senders[s].next - senders[s].acked) as u64;
                            fl.on_loss(flight);
                            fl.cwnd.set(fl.ssthresh.get());
                            senders[s].recover = Some(senders[s].next);
                            let hole = senders[s].acked;
                            transmit!(s, hole, t);
                            arm_rto!(s, t);
                        }
                    }
                }
                Ev::Rto { s } => {
                    senders[s].rto_ev = None;
                    if senders[s].acked >= senders[s].segs.len() {
                        continue;
                    }
                    let fl = &self.flows[senders[s].flow];
                    let flight = (senders[s].next - senders[s].acked) as u64;
                    fl.on_loss(flight);
                    fl.cwnd.set(1.0);
                    fl.rto.set((fl.rto.get() * 2).min(MAX_RTO));
                    senders[s].dup = 0;
                    senders[s].recover = Some(senders[s].next);
                    let hole = senders[s].acked;
                    transmit!(s, hole, t);
                    arm_rto!(s, t);
                }
            }
        }

        self.retrans_total
            .set(self.retrans_total.get() + out.retrans_segments);
        self.dup_acks_total
            .set(self.dup_acks_total.get() + out.dup_acks);
        out.duration = done_at.since(now);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> Bytes {
        Bytes::new(n)
    }

    fn lan() -> LinkParams {
        LinkParams::gigabit_lan()
    }

    fn ep(conns: u32) -> TcpEndpoint {
        TcpEndpoint::new(TcpLink::new(), conns)
    }

    #[test]
    fn single_segment_matches_pipe_one_way_exactly() {
        let p = lan();
        let e = ep(1);
        let t = e.transfer_on(&p, SimTime::ZERO, b(1000), Direction::Up, 0);
        assert_eq!(t.duration, p.one_way(b(1000 + SEGMENT_HEADER_BYTES)));
        assert_eq!(t.segments, 1);
        assert_eq!(t.retrans_segments, 0);
    }

    #[test]
    fn window_fitting_burst_matches_stream_closed_form() {
        // 6 segments fit inside IW10: completion is the last segment's
        // serialization plus one propagation — the pipe stream form
        // with per-segment headers.
        let p = lan();
        let e = ep(1);
        let bytes = 6 * MSS;
        let t = e.transfer_on(&p, SimTime::ZERO, b(bytes), Direction::Up, 0);
        let expected = p.rtt / 2 + p.serialize(b(bytes + 6 * SEGMENT_HEADER_BYTES));
        assert_eq!(t.duration, expected);
        assert_eq!(t.segments, 6);
    }

    #[test]
    fn zero_byte_exchange_still_costs_a_segment() {
        let p = lan();
        let e = ep(1);
        let t = e.transfer_on(&p, SimTime::ZERO, Bytes::ZERO, Direction::Up, 0);
        assert_eq!(t.segments, 1);
        assert_eq!(t.duration, p.one_way(b(SEGMENT_HEADER_BYTES)));
    }

    #[test]
    fn large_transfer_needs_multiple_windows_yet_terminates() {
        let p = lan();
        let e = ep(1);
        let bytes = 100 * MSS;
        let t = e.transfer_on(&p, SimTime::ZERO, b(bytes), Direction::Up, 0);
        // More than one window: slow start needs extra round trips
        // over the single-burst closed form.
        let one_burst = p.rtt / 2 + p.serialize(b(bytes + 100 * SEGMENT_HEADER_BYTES));
        assert!(t.duration > one_burst);
        assert_eq!(t.segments, 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = LinkParams::wan(SimDuration::from_millis(40));
        let x = ep(2).transfer_striped(&p, SimTime::ZERO, b(2_000_000), Direction::Down);
        let y = ep(2).transfer_striped(&p, SimTime::ZERO, b(2_000_000), Direction::Down);
        assert_eq!(x, y);
    }

    #[test]
    fn queue_backlog_induces_delay_for_later_transfers() {
        let p = lan();
        let e = ep(1);
        let idle = e.transfer_on(&p, SimTime::ZERO, b(8192), Direction::Up, 0);
        // Re-offered at the same instant, the second transfer queues
        // behind the first one's segments.
        let queued = e.transfer_on(&p, SimTime::ZERO, b(8192), Direction::Up, 0);
        assert!(queued.duration > idle.duration);
    }

    #[test]
    fn sustained_overload_tail_drops_and_retransmits() {
        let p = lan();
        let e = ep(1);
        // Many transfers offered at the same instant: the backlog
        // blows past the queue cap and loss recovery kicks in.
        let mut retrans = 0;
        for _ in 0..80 {
            let t = e.transfer_on(&p, SimTime::ZERO, b(8 * MSS), Direction::Up, 0);
            retrans += t.retrans_segments;
        }
        assert!(e.link().queue(Direction::Up).drops() > 0, "queue dropped");
        assert!(retrans > 0, "drops were retransmitted");
        assert_eq!(e.retrans_segments(), retrans);
    }

    #[test]
    fn striping_uses_every_flow() {
        let p = lan();
        let e = ep(4);
        let t = e.transfer_striped(&p, SimTime::ZERO, b(8 * MSS), Direction::Down);
        assert_eq!(t.segments, 8);
        // Aggregate initial window is 4×IW10, so 8 segments still go
        // out in one burst.
        let expected = p.rtt / 2 + p.serialize(b(8 * MSS + 8 * SEGMENT_HEADER_BYTES));
        assert_eq!(t.duration, expected);
    }

    #[test]
    fn round_robin_allegiance_cycles_flows() {
        let e = ep(3);
        assert_eq!(e.next_flow(), 0);
        assert_eq!(e.next_flow(), 1);
        assert_eq!(e.next_flow(), 2);
        assert_eq!(e.next_flow(), 0);
    }

    #[test]
    fn rtt_estimator_converges_and_floors_rto() {
        let f = FlowState::new();
        for _ in 0..20 {
            f.rtt_sample(200_000); // 200 µs LAN
        }
        assert!(f.srtt.get() > 150_000 && f.srtt.get() < 250_000);
        assert_eq!(f.rto.get(), MIN_RTO);
    }
}
