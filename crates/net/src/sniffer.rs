//! An Ethereal-style packet monitor.
//!
//! The paper instruments its testbed with Ethereal to count and
//! classify messages; this module gives the simulated LAN the same
//! facility: when attached, every message on every channel is recorded
//! as a [`PacketRecord`] (timestamp, channel, payload size), and
//! summaries can be dumped per channel — without influencing the
//! measured workload, exactly like a passive tap.

use simkit::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One captured message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// Capture timestamp (virtual).
    pub at: SimTime,
    /// Channel label (`nfs`, `iscsi`, ...).
    pub channel: String,
    /// Payload bytes (headers excluded).
    pub payload: u64,
}

/// A passive tap on the simulated link.
#[derive(Debug, Default)]
pub struct Sniffer {
    records: RefCell<Vec<PacketRecord>>,
    enabled: std::cell::Cell<bool>,
}

/// Per-channel capture summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelSummary {
    /// Messages captured.
    pub messages: u64,
    /// Payload bytes captured.
    pub bytes: u64,
}

impl Sniffer {
    /// Creates a tap; it starts enabled.
    pub fn new() -> Rc<Sniffer> {
        let s = Rc::new(Sniffer::default());
        s.enabled.set(true);
        s
    }

    /// Starts or stops capturing (records are kept either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Records one message (called by the network layer).
    pub fn observe(&self, at: SimTime, channel: &str, payload: u64) {
        if self.enabled.get() {
            self.records.borrow_mut().push(PacketRecord {
                at,
                channel: channel.to_owned(),
                payload,
            });
        }
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.borrow().is_empty()
    }

    /// Clears the capture buffer.
    pub fn clear(&self) {
        self.records.borrow_mut().clear();
    }

    /// A copy of the records in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<PacketRecord> {
        self.records
            .borrow()
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .cloned()
            .collect()
    }

    /// Per-channel message/byte summary of everything captured.
    pub fn summary(&self) -> BTreeMap<String, ChannelSummary> {
        let mut out: BTreeMap<String, ChannelSummary> = BTreeMap::new();
        for r in self.records.borrow().iter() {
            let e = out.entry(r.channel.clone()).or_default();
            e.messages += 1;
            e.bytes += r.payload;
        }
        out
    }

    /// Mean payload size over the capture (the paper quotes mean
    /// request sizes: 4.7 KB for NFS writes vs 128 KB for iSCSI).
    pub fn mean_payload(&self, channel: &str) -> f64 {
        let records = self.records.borrow();
        let (n, total) = records
            .iter()
            .filter(|r| r.channel == channel)
            .fold((0u64, 0u64), |(n, t), r| (n + 1, t + r.payload));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_summarize() {
        let s = Sniffer::new();
        s.observe(SimTime::from_nanos(10), "nfs", 100);
        s.observe(SimTime::from_nanos(20), "nfs", 300);
        s.observe(SimTime::from_nanos(30), "iscsi", 4096);
        let sum = s.summary();
        assert_eq!(sum["nfs"].messages, 2);
        assert_eq!(sum["nfs"].bytes, 400);
        assert_eq!(sum["iscsi"].messages, 1);
        assert_eq!(s.mean_payload("nfs"), 200.0);
        assert_eq!(s.mean_payload("missing"), 0.0);
    }

    #[test]
    fn windows_are_half_open() {
        let s = Sniffer::new();
        for t in [5u64, 10, 15] {
            s.observe(SimTime::from_nanos(t), "x", 1);
        }
        let w = s.window(SimTime::from_nanos(5), SimTime::from_nanos(15));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn disabling_stops_capture() {
        let s = Sniffer::new();
        s.observe(SimTime::from_nanos(1), "x", 1);
        s.set_enabled(false);
        s.observe(SimTime::from_nanos(2), "x", 1);
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }
}
