//! An Ethereal-style packet monitor.
//!
//! The paper instruments its testbed with Ethereal to count and
//! classify messages; this module gives the simulated LAN the same
//! facility: when attached, every message on every channel is recorded
//! as a [`PacketRecord`] (timestamp, channel, payload size), and
//! summaries can be dumped per channel — without influencing the
//! measured workload, exactly like a passive tap.

use simkit::units::{self, Bytes};
use simkit::SimTime;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Classification of a captured segment. The TCP flow model tags its
/// loss-recovery traffic so a capture can separate goodput from
/// retransmissions — the distinction the paper reads off its Ethereal
/// traces in §4.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegKind {
    /// Ordinary first-transmission data (every pipe-model message).
    #[default]
    Payload,
    /// A segment transmitted more than once by a TCP flow.
    Retransmit,
    /// A duplicate cumulative ACK (the fast-retransmit trigger).
    DupAck,
}

/// One captured message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// Capture timestamp (virtual).
    pub at: SimTime,
    /// Channel label (`nfs`, `iscsi`, ...).
    pub channel: String,
    /// Payload bytes (headers excluded).
    pub payload: Bytes,
    /// What kind of segment this was.
    pub kind: SegKind,
}

/// Default capture bound: enough for any micro-benchmark, small
/// enough that a day-long macro run cannot exhaust memory.
pub const DEFAULT_CAPTURE_CAPACITY: usize = 1 << 20;

/// A passive tap on the simulated link.
///
/// The capture buffer is bounded: once `capacity` records are held,
/// further messages are *dropped* (newest-lost, like a kernel ring
/// losing packets under load) but still counted per channel, so
/// [`summary`](Sniffer::summary) stays honest about what was missed.
///
/// Capture accounting is thread-safe (`Sniffer` is `Send + Sync`):
/// record appends and drop counts are guarded by internal locks, so
/// even if parallel sweep cells were ever pointed at a shared tap,
/// their channel summaries could not interleave mid-update. Normal
/// sweeps still attach one tap per cell, which also keeps summaries
/// per-cell.
#[derive(Debug)]
pub struct Sniffer {
    records: Mutex<Vec<PacketRecord>>,
    enabled: AtomicBool,
    capacity: AtomicUsize,
    dropped: Mutex<BTreeMap<String, u64>>,
}

impl Default for Sniffer {
    fn default() -> Self {
        Sniffer {
            records: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_CAPTURE_CAPACITY),
            dropped: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Per-channel capture summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelSummary {
    /// Messages captured (all kinds).
    pub messages: u64,
    /// Payload bytes captured (all kinds).
    pub bytes: Bytes,
    /// Messages seen but not recorded because the capture buffer was
    /// full.
    pub dropped: u64,
    /// Captured records tagged [`SegKind::Retransmit`].
    pub retransmits: u64,
    /// Captured records tagged [`SegKind::DupAck`].
    pub dup_acks: u64,
}

impl Sniffer {
    /// Creates a tap; it starts enabled, with the default capacity.
    pub fn new() -> Rc<Sniffer> {
        let s = Rc::new(Sniffer::default());
        s.set_enabled(true);
        s
    }

    /// Creates a tap holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Rc<Sniffer> {
        let s = Sniffer::new();
        s.set_capacity(capacity);
        s
    }

    /// Starts or stops capturing (records are kept either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Changes the record bound. Already-captured records above the
    /// new bound are kept; only future captures are limited.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// The current record bound.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Records one ordinary message (called by the network layer). The
    /// record-or-drop decision happens under the capture lock, so the
    /// buffer can never exceed its bound and every message lands in
    /// exactly one of the two tallies even under concurrent observers.
    pub fn observe(&self, at: SimTime, channel: &str, payload: Bytes) {
        self.observe_kind(at, channel, payload, SegKind::Payload);
    }

    /// Records one message with an explicit [`SegKind`] (the TCP flow
    /// model tags retransmissions and duplicate ACKs). Subject to the
    /// same capacity bound and drop accounting as [`observe`]
    /// (tagged segments a full buffer misses are counted dropped like
    /// any other).
    ///
    /// [`observe`]: Sniffer::observe
    pub fn observe_kind(&self, at: SimTime, channel: &str, payload: Bytes, kind: SegKind) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut records = self.records.lock().unwrap();
        if records.len() >= self.capacity() {
            let mut dropped = self.dropped.lock().unwrap();
            if let Some(n) = dropped.get_mut(channel) {
                *n += 1;
            } else {
                dropped.insert(channel.to_owned(), 1);
            }
            return;
        }
        records.push(PacketRecord {
            at,
            channel: channel.to_owned(),
            payload,
            kind,
        });
    }

    /// Total messages dropped at the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped.lock().unwrap().values().sum()
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.lock().unwrap().is_empty()
    }

    /// Clears the capture buffer and the dropped counts.
    pub fn clear(&self) {
        self.records.lock().unwrap().clear();
        self.dropped.lock().unwrap().clear();
    }

    /// A copy of the records in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<PacketRecord> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .cloned()
            .collect()
    }

    /// Per-channel message/byte summary of everything captured, with
    /// per-channel drop counts. Channels whose messages were *all*
    /// dropped still appear (with `messages == 0`).
    pub fn summary(&self) -> BTreeMap<String, ChannelSummary> {
        let mut out: BTreeMap<String, ChannelSummary> = BTreeMap::new();
        for r in self.records.lock().unwrap().iter() {
            let e = out.entry(r.channel.clone()).or_default();
            e.messages += 1;
            e.bytes += r.payload;
            match r.kind {
                SegKind::Payload => {}
                SegKind::Retransmit => e.retransmits += 1,
                SegKind::DupAck => e.dup_acks += 1,
            }
        }
        for (chan, &n) in self.dropped.lock().unwrap().iter() {
            out.entry(chan.clone()).or_default().dropped = n;
        }
        out
    }

    /// Mean payload size over the capture (the paper quotes mean
    /// request sizes: 4.7 KB for NFS writes vs 128 KB for iSCSI).
    pub fn mean_payload(&self, channel: &str) -> f64 {
        let records = self.records.lock().unwrap();
        let (n, total) = records
            .iter()
            .filter(|r| r.channel == channel)
            .fold((0u64, Bytes::ZERO), |(n, t), r| (n + 1, t + r.payload));
        if n == 0 {
            0.0
        } else {
            units::ratio(total.get(), n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> Bytes {
        Bytes::new(n)
    }

    #[test]
    fn capture_and_summarize() {
        let s = Sniffer::new();
        s.observe(SimTime::from_nanos(10), "nfs", b(100));
        s.observe(SimTime::from_nanos(20), "nfs", b(300));
        s.observe(SimTime::from_nanos(30), "iscsi", b(4096));
        let sum = s.summary();
        assert_eq!(sum["nfs"].messages, 2);
        assert_eq!(sum["nfs"].bytes, b(400));
        assert_eq!(sum["iscsi"].messages, 1);
        assert_eq!(s.mean_payload("nfs"), 200.0);
        assert_eq!(s.mean_payload("missing"), 0.0);
    }

    #[test]
    fn windows_are_half_open() {
        let s = Sniffer::new();
        for t in [5u64, 10, 15] {
            s.observe(SimTime::from_nanos(t), "x", b(1));
        }
        let w = s.window(SimTime::from_nanos(5), SimTime::from_nanos(15));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn disabling_stops_capture() {
        let s = Sniffer::new();
        s.observe(SimTime::from_nanos(1), "x", b(1));
        s.set_enabled(false);
        s.observe(SimTime::from_nanos(2), "x", b(1));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let s = Sniffer::with_capacity(3);
        assert_eq!(s.capacity(), 3);
        for t in 0..5u64 {
            s.observe(SimTime::from_nanos(t), "nfs", b(100));
        }
        s.observe(SimTime::from_nanos(9), "iscsi", b(4096));
        assert_eq!(s.len(), 3, "buffer bounded at capacity");
        assert_eq!(s.dropped(), 3);
        let sum = s.summary();
        assert_eq!(sum["nfs"].messages, 3);
        assert_eq!(sum["nfs"].dropped, 2);
        // A channel whose traffic was entirely dropped still shows up.
        assert_eq!(sum["iscsi"].messages, 0);
        assert_eq!(sum["iscsi"].bytes, Bytes::ZERO);
        assert_eq!(sum["iscsi"].dropped, 1);
        // The retained records are the earliest ones (newest-lost).
        assert_eq!(s.window(SimTime::ZERO, SimTime::from_nanos(3)).len(), 3);
    }

    #[test]
    fn tagged_segments_summarize_by_kind() {
        let s = Sniffer::new();
        s.observe(SimTime::from_nanos(1), "nfs", b(1000));
        s.observe_kind(SimTime::from_nanos(2), "nfs", b(1460), SegKind::Retransmit);
        s.observe_kind(SimTime::from_nanos(3), "nfs", b(1460), SegKind::Retransmit);
        s.observe_kind(SimTime::from_nanos(4), "nfs", Bytes::ZERO, SegKind::DupAck);
        let sum = s.summary();
        assert_eq!(sum["nfs"].messages, 4, "all kinds count as messages");
        assert_eq!(sum["nfs"].bytes, b(1000 + 2 * 1460));
        assert_eq!(sum["nfs"].retransmits, 2);
        assert_eq!(sum["nfs"].dup_acks, 1);
        // Untagged observes default to Payload.
        let w = s.window(SimTime::ZERO, SimTime::from_nanos(2));
        assert_eq!(w[0].kind, SegKind::Payload);
    }

    #[test]
    fn capacity_bound_applies_to_tagged_kinds_too() {
        // Regression: the new kinds must obey the same record-or-drop
        // contract as plain payloads — a full buffer counts them
        // dropped instead of growing without bound.
        let s = Sniffer::with_capacity(2);
        s.observe_kind(SimTime::from_nanos(1), "tcp", b(1460), SegKind::Retransmit);
        s.observe_kind(SimTime::from_nanos(2), "tcp", Bytes::ZERO, SegKind::DupAck);
        s.observe_kind(SimTime::from_nanos(3), "tcp", b(1460), SegKind::Retransmit);
        s.observe_kind(
            SimTime::from_nanos(4),
            "other",
            Bytes::ZERO,
            SegKind::DupAck,
        );
        assert_eq!(s.len(), 2, "buffer bounded at capacity");
        assert_eq!(s.dropped(), 2);
        let sum = s.summary();
        assert_eq!(sum["tcp"].messages, 2);
        assert_eq!(sum["tcp"].retransmits, 1);
        assert_eq!(sum["tcp"].dup_acks, 1);
        assert_eq!(sum["tcp"].dropped, 1, "third tcp record was dropped");
        // The all-dropped channel still surfaces, kinds at zero.
        assert_eq!(sum["other"].messages, 0);
        assert_eq!(sum["other"].dropped, 1);
        assert_eq!(sum["other"].retransmits, 0);
        assert_eq!(sum["other"].dup_acks, 0);
    }

    #[test]
    fn clear_resets_drop_counts() {
        let s = Sniffer::with_capacity(1);
        s.observe(SimTime::from_nanos(1), "x", b(1));
        s.observe(SimTime::from_nanos(2), "x", b(1));
        assert_eq!(s.dropped(), 1);
        s.clear();
        assert_eq!(s.dropped(), 0);
        assert!(s.summary().is_empty());
        // Capacity frees up again after clear.
        s.observe(SimTime::from_nanos(3), "x", b(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn window_edge_cases() {
        let s = Sniffer::new();
        // Empty capture: any window is empty.
        assert!(s.window(SimTime::ZERO, SimTime::from_nanos(100)).is_empty());
        s.observe(SimTime::from_nanos(10), "x", b(1));
        // from == to: half-open interval is empty even on a record.
        assert!(s
            .window(SimTime::from_nanos(10), SimTime::from_nanos(10))
            .is_empty());
        // Exact bounds: start inclusive, end exclusive.
        assert_eq!(
            s.window(SimTime::from_nanos(10), SimTime::from_nanos(11))
                .len(),
            1
        );
    }

    #[test]
    fn concurrent_observers_never_lose_or_double_count() {
        // Regression for the parallel sweep engine: capture accounting
        // must hold up even when several threads hammer one tap. Every
        // observed message must end up either captured or counted as
        // dropped — exactly once — and the buffer must respect its
        // bound.
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        const CAP: usize = 300;
        let s = std::sync::Arc::new(Sniffer::default());
        s.set_enabled(true);
        s.set_capacity(CAP);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        s.observe(
                            SimTime::from_nanos(t * PER_THREAD + i),
                            "nfs",
                            Bytes::new(64),
                        );
                    }
                });
            }
        });
        let total = THREADS * PER_THREAD;
        assert_eq!(s.len(), CAP, "buffer filled exactly to capacity");
        assert_eq!(s.dropped(), total - CAP as u64);
        let sum = s.summary();
        assert_eq!(sum["nfs"].messages + sum["nfs"].dropped, total);
        assert_eq!(sum["nfs"].bytes, b(CAP as u64 * 64));
    }

    #[test]
    fn mean_payload_edge_cases() {
        let s = Sniffer::new();
        // No records at all.
        assert_eq!(s.mean_payload("nfs"), 0.0);
        s.observe(SimTime::from_nanos(1), "iscsi", b(128));
        // Records exist, but not on the queried channel.
        assert_eq!(s.mean_payload("nfs"), 0.0);
        assert_eq!(s.mean_payload("iscsi"), 128.0);
    }
}
