//! Multi-host network fabric.
//!
//! The paper's testbed is one client and one server on a dedicated
//! link, which [`super::Network`] models directly. A [`Fabric`]
//! generalizes that to N named client hosts fanning into one server:
//! every host gets its own [`Network`] endpoint (so per-host RTT and
//! message accounting stay separate), while all endpoints contend for
//! the *server-side* link bandwidth through a shared [`LinkShare`].
//!
//! Counter layering: a channel opened on host `c1` with label `nfs`
//! bumps `net.c1.nfs.msgs` / `net.c1.nfs.bytes` *in addition to* the
//! point-to-point names (`net.nfs.*`) and the grand totals
//! (`net.total.*`). Existing reports that only read the old names keep
//! working; multi-client experiments can attribute traffic per host.
//!
//! Contention model: the server NIC serializes at `bandwidth_bps`
//! overall, so with `k` hosts marked active each endpoint's effective
//! bandwidth is `bandwidth_bps / k` — the fair-share steady state of
//! TCP flows over one bottleneck. `set_active(1)` (the default)
//! reproduces the dedicated-link timing exactly.
//!
//! # Example
//!
//! ```
//! use simkit::Sim;
//! use net::{Fabric, LinkParams, Transport};
//!
//! let sim = Sim::new(1);
//! let fabric = Fabric::new(sim.clone(), LinkParams::gigabit_lan());
//! let a = fabric.host("c0").channel("nfs", Transport::Tcp);
//! let b = fabric.host("c1").channel("nfs", Transport::Tcp);
//! fabric.set_active(2); // both hosts now share the server link
//! a.round_trip(128, 128);
//! b.round_trip(128, 128);
//! assert_eq!(sim.counters().get("net.c0.nfs.msgs"), 2);
//! assert_eq!(sim.counters().get("net.c1.nfs.msgs"), 2);
//! assert_eq!(sim.counters().get("net.nfs.msgs"), 4); // layered total
//! ```

use crate::tcp::TcpLink;
use crate::{LinkParams, Network, Sniffer};
use simkit::{Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// The number of hosts actively contending for the server-side link.
/// Shared by every endpoint of one [`Fabric`].
#[derive(Debug)]
pub struct LinkShare {
    active: Cell<u32>,
}

impl LinkShare {
    fn new() -> Rc<Self> {
        Rc::new(LinkShare {
            active: Cell::new(1),
        })
    }

    /// Hosts currently contending for the shared link.
    pub fn active(&self) -> u32 {
        self.active.get()
    }

    /// Sets the contender count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_active(&self, n: u32) {
        assert!(n >= 1, "a shared link needs at least one active host");
        self.active.set(n);
    }
}

/// A topology of named host endpoints sharing one server link.
#[derive(Debug)]
pub struct Fabric {
    sim: Rc<Sim>,
    base: Cell<LinkParams>,
    share: Rc<LinkShare>,
    /// One bottleneck queue pair for the whole fabric: under the TCP
    /// model every host's flows contend for the same server port
    /// queues, which is where cross-client congestion comes from.
    tcp_link: Rc<TcpLink>,
    hosts: RefCell<Vec<(String, Rc<Network>)>>,
}

impl Fabric {
    /// Creates a fabric whose server link has the given base
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.loss` is outside `[0, 1)`.
    pub fn new(sim: Rc<Sim>, params: LinkParams) -> Rc<Self> {
        params.validate();
        Rc::new(Fabric {
            sim,
            base: Cell::new(params),
            share: LinkShare::new(),
            tcp_link: TcpLink::new(),
            hosts: RefCell::new(Vec::new()),
        })
    }

    /// The server-side TCP bottleneck shared by every endpoint (idle
    /// unless the TCP transport model is selected).
    pub fn tcp_link(&self) -> &Rc<TcpLink> {
        &self.tcp_link
    }

    /// The shared simulation context.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// The uncontended server-link parameters (what one host sees when
    /// it has the link to itself).
    pub fn base_params(&self) -> LinkParams {
        self.base.get()
    }

    /// The contention state shared by every endpoint.
    pub fn share(&self) -> &Rc<LinkShare> {
        &self.share
    }

    /// Marks `n` hosts as actively contending for the server link.
    pub fn set_active(&self, n: u32) {
        self.share.set_active(n);
    }

    /// Returns the endpoint for `name`, creating it on first use. The
    /// endpoint starts with the fabric's current base parameters and
    /// shares the server-side bandwidth with every other host.
    pub fn host(self: &Rc<Self>, name: &str) -> Rc<Network> {
        if let Some((_, net)) = self.hosts.borrow().iter().find(|(n, _)| n == name) {
            return Rc::clone(net);
        }
        let net = Network::endpoint(
            Rc::clone(&self.sim),
            self.base.get(),
            name.to_string(),
            Rc::clone(&self.share),
            Rc::clone(&self.tcp_link),
        );
        self.hosts
            .borrow_mut()
            .push((name.to_string(), Rc::clone(&net)));
        net
    }

    /// The host names, in creation order.
    pub fn hosts(&self) -> Vec<String> {
        self.hosts.borrow().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Reconfigures the round-trip time on every endpoint, present and
    /// future (the NISTNet knob, fabric-wide).
    pub fn set_rtt(&self, rtt: SimDuration) {
        let mut base = self.base.get();
        base.rtt = rtt;
        self.base.set(base);
        for (_, net) in self.hosts.borrow().iter() {
            net.set_rtt(rtt);
        }
    }

    /// Attaches one passive monitor to every existing endpoint.
    pub fn attach_sniffer(&self, s: Option<Rc<Sniffer>>) {
        for (_, net) in self.hosts.borrow().iter() {
            net.attach_sniffer(s.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transport;

    fn setup() -> (Rc<Sim>, Rc<Fabric>) {
        let sim = Sim::new(11);
        let fabric = Fabric::new(sim.clone(), LinkParams::gigabit_lan());
        (sim, fabric)
    }

    #[test]
    fn host_endpoints_are_memoized() {
        let (_sim, fabric) = setup();
        let a = fabric.host("c0");
        let b = fabric.host("c0");
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(fabric.hosts(), vec!["c0".to_string()]);
        assert_eq!(a.host(), Some("c0"));
    }

    #[test]
    fn per_host_counters_layer_over_totals() {
        let (sim, fabric) = setup();
        let a = fabric.host("c0").channel("nfs", Transport::Tcp);
        let b = fabric.host("c1").channel("nfs", Transport::Tcp);
        a.round_trip(100, 100);
        b.round_trip(100, 100);
        b.round_trip(100, 100);
        let c = sim.counters();
        assert_eq!(c.get("net.c0.nfs.msgs"), 2);
        assert_eq!(c.get("net.c1.nfs.msgs"), 4);
        assert_eq!(c.get("net.nfs.msgs"), 6, "per-label total spans hosts");
        assert_eq!(c.get("net.total.msgs"), 6);
        assert_eq!(
            c.get("net.c0.nfs.bytes") + c.get("net.c1.nfs.bytes"),
            c.get("net.nfs.bytes"),
            "host byte counters partition the label total"
        );
    }

    #[test]
    fn extra_bytes_land_in_host_namespace() {
        let (sim, fabric) = setup();
        let ch = fabric.host("c3").channel("iscsi", Transport::Tcp);
        ch.account_extra_bytes(4096);
        assert_eq!(sim.counters().get("net.c3.iscsi.bytes"), 4096);
        assert_eq!(sim.counters().get("net.iscsi.bytes"), 4096);
        assert_eq!(sim.counters().get("net.c3.iscsi.msgs"), 0);
    }

    #[test]
    fn active_hosts_split_the_server_bandwidth() {
        let (_sim, fabric) = setup();
        let base = fabric.base_params();
        let one = fabric.host("c0");
        assert_eq!(one.params().bandwidth_bps, base.bandwidth_bps);
        fabric.set_active(4);
        assert_eq!(one.params().bandwidth_bps, base.bandwidth_bps / 4);
        // Serialization time scales inversely with the share.
        assert_eq!(
            one.params().serialize(4096).as_nanos(),
            base.serialize(4096).as_nanos() * 4
        );
        fabric.set_active(1);
        assert_eq!(one.params().bandwidth_bps, base.bandwidth_bps);
    }

    #[test]
    fn degenerate_single_host_matches_point_to_point_timing() {
        let sim = Sim::new(5);
        let plain = Network::new(sim.clone(), LinkParams::gigabit_lan());
        let pc = plain.channel("x", Transport::Tcp);
        let (sim2, fabric) = setup();
        let fc = fabric.host("c0").channel("x", Transport::Tcp);
        assert_eq!(pc.round_trip(1000, 200), fc.round_trip(1000, 200));
        assert_eq!(pc.stream(65_536, 16), fc.stream(65_536, 16));
        drop((sim, sim2));
    }

    #[test]
    fn rtt_fan_out_reaches_existing_and_future_hosts() {
        let (_sim, fabric) = setup();
        let early = fabric.host("c0");
        fabric.set_rtt(SimDuration::from_millis(30));
        let late = fabric.host("c1");
        assert_eq!(early.params().rtt, SimDuration::from_millis(30));
        assert_eq!(late.params().rtt, SimDuration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn fabric_rejects_invalid_loss() {
        let sim = Sim::new(1);
        let _ = Fabric::new(
            sim,
            LinkParams {
                loss: -0.1,
                ..LinkParams::gigabit_lan()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one active host")]
    fn zero_active_hosts_is_rejected() {
        let (_sim, fabric) = setup();
        fabric.set_active(0);
    }
}
