//! Multi-host network fabric.
//!
//! The paper's testbed is one client and one server on a dedicated
//! link, which [`super::Network`] models directly. A [`Fabric`]
//! generalizes that in two steps:
//!
//! * **One server, N clients** ([`Fabric::new`]): every named host gets
//!   its own [`Network`] endpoint (per-host RTT and message accounting
//!   stay separate), while all endpoints contend for the server-side
//!   link bandwidth through a shared [`LinkShare`].
//! * **M servers behind a core switch** ([`Fabric::with_core`]): each
//!   server has its own edge link (a [`Port`]: a [`LinkShare`] plus a
//!   private TCP bottleneck queue pair), and every edge link feeds a
//!   shared *core* [`LinkShare`]. An endpoint's effective bandwidth is
//!   the minimum of its edge share and the core share — the two-level
//!   fair-share tree of a thousand-client sharded topology:
//!
//! ```text
//!   c0 … c249 ──┐                      ┌── c250 … c499
//!               ├─ edge s0 ─┐  ┌─ edge s1 ─┤
//!                           core switch
//!               ├─ edge s2 ─┘  └─ edge s3 ─┤
//!   c500 … c749 ┘                      └── c750 … c999
//! ```
//!
//! Counter layering: a channel opened on host `c1` with label `nfs`
//! bumps `net.c1.nfs.msgs` / `net.c1.nfs.bytes` *in addition to* the
//! point-to-point names (`net.nfs.*`) and the grand totals
//! (`net.total.*`). Existing reports that only read the old names keep
//! working; multi-client experiments can attribute traffic per host.
//!
//! Contention model: a server NIC serializes at its edge `bandwidth_bps`
//! overall, so with `k` hosts marked active on the port each endpoint's
//! effective bandwidth is `bandwidth_bps / k` — the fair-share steady
//! state of TCP flows over one bottleneck. The core divides its
//! bandwidth across the fabric's ports the same way. Shares are
//! *cached*: they are recomputed on active-set deltas
//! ([`LinkShare::set_active`], port creation), never per message, so a
//! thousand-client hot path reads two `Cell`s instead of redoing the
//! division. `set_active(1)` (the default) reproduces the
//! dedicated-link timing exactly, and a single-port fabric has no core
//! (`parent: None`) so its arithmetic is bit-for-bit the historical
//! `base / active`.
//!
//! # Example
//!
//! ```
//! use simkit::{Bytes, Sim};
//! use net::{Fabric, LinkParams, Transport};
//!
//! let sim = Sim::new(1);
//! let fabric = Fabric::new(sim.clone(), LinkParams::gigabit_lan());
//! let a = fabric.host("c0").channel("nfs", Transport::Tcp);
//! let b = fabric.host("c1").channel("nfs", Transport::Tcp);
//! fabric.set_active(2); // both hosts now share the server link
//! a.round_trip(Bytes::new(128), Bytes::new(128));
//! b.round_trip(Bytes::new(128), Bytes::new(128));
//! assert_eq!(sim.counters().get("net.c0.nfs.msgs"), 2);
//! assert_eq!(sim.counters().get("net.c1.nfs.msgs"), 2);
//! assert_eq!(sim.counters().get("net.nfs.msgs"), 4); // layered total
//! ```

use crate::tcp::TcpLink;
use crate::{LinkParams, Network, Sniffer};
use simkit::units::Bps;
use simkit::{Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// One level of the link-share tree: hosts actively contending for a
/// link of `base_bps`, with the resulting fair share cached. An
/// optional parent (the core switch link) caps the effective rate from
/// above. Shared by every endpoint of one [`Fabric`] port.
#[derive(Debug)]
pub struct LinkShare {
    active: Cell<u32>,
    base_bps: Cell<Bps>,
    /// `base_bps / active`, maintained by [`set_active`]
    /// (`LinkShare::set_active`) so the per-message path never divides.
    share_bps: Cell<Bps>,
    /// The next link level up (core switch), if any.
    parent: Option<Rc<LinkShare>>,
}

impl LinkShare {
    fn new(base_bps: Bps, parent: Option<Rc<LinkShare>>) -> Rc<Self> {
        Rc::new(LinkShare {
            active: Cell::new(1),
            base_bps: Cell::new(base_bps),
            share_bps: Cell::new(base_bps),
            parent,
        })
    }

    /// Hosts currently contending for this link.
    pub fn active(&self) -> u32 {
        self.active.get()
    }

    /// Sets the contender count and recomputes the cached fair share —
    /// the only place the division happens.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_active(&self, n: u32) {
        assert!(n >= 1, "a shared link needs at least one active host");
        self.active.set(n);
        self.share_bps.set(self.base_bps.get() / n as u64);
    }

    /// This level's bandwidth before sharing.
    pub fn base_bps(&self) -> Bps {
        self.base_bps.get()
    }

    /// The effective per-host rate: this level's cached fair share,
    /// capped by every level above. Two `Cell` reads on the common
    /// two-level tree.
    pub fn effective_bps(&self) -> Bps {
        let own = self.share_bps.get();
        match &self.parent {
            Some(p) => own.min(p.effective_bps()),
            None => own,
        }
    }

    fn set_base_bps(&self, bps: Bps) {
        self.base_bps.set(bps);
        self.share_bps.set(bps / self.active.get() as u64);
    }
}

/// A stable, copyable handle to one fabric endpoint — the cheap
/// alternative to re-resolving a host name per access. Only valid for
/// the [`Fabric`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(u32);

impl EndpointId {
    /// The endpoint's dense index (creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One server-side attachment point: the edge [`LinkShare`] its hosts
/// contend on, and the TCP bottleneck queue pair its flows share.
#[derive(Debug)]
struct Port {
    share: Rc<LinkShare>,
    tcp_link: Rc<TcpLink>,
}

/// A topology of named host endpoints attached to one or more server
/// ports, optionally behind a shared core link. See the
/// [module docs](self).
#[derive(Debug)]
pub struct Fabric {
    sim: Rc<Sim>,
    base: Cell<LinkParams>,
    /// The shared core-switch link, present on [`Fabric::with_core`]
    /// fabrics; its active count tracks the port count.
    core: Option<Rc<LinkShare>>,
    ports: RefCell<Vec<Port>>,
    /// `(name, port, endpoint)` in creation order.
    hosts: RefCell<Vec<(String, u32, Rc<Network>)>>,
    /// Name → index into `hosts`. Lookup only, never iterated (detlint
    /// D2: ordered walks go through the insertion-ordered `hosts` Vec).
    host_index: RefCell<HashMap<String, u32>>,
}

impl Fabric {
    /// Creates a single-port fabric whose server link has the given
    /// base parameters — the historical N-clients-one-server shape,
    /// byte-identical to what it always produced.
    ///
    /// # Panics
    ///
    /// Panics if `params.loss` is outside `[0, 1)`.
    pub fn new(sim: Rc<Sim>, params: LinkParams) -> Rc<Self> {
        let f = Fabric::with_core_inner(sim, params, None);
        f.add_port();
        f
    }

    /// Creates a fabric whose server ports sit behind a shared core
    /// link of `core_bandwidth_bps`. Starts with no ports; call
    /// [`Fabric::add_port`] once per server.
    ///
    /// # Panics
    ///
    /// Panics if `params.loss` is outside `[0, 1)`.
    pub fn with_core(sim: Rc<Sim>, params: LinkParams, core_bandwidth_bps: Bps) -> Rc<Self> {
        Fabric::with_core_inner(sim, params, Some(core_bandwidth_bps))
    }

    fn with_core_inner(sim: Rc<Sim>, params: LinkParams, core_bps: Option<Bps>) -> Rc<Self> {
        params.validate();
        Rc::new(Fabric {
            sim,
            base: Cell::new(params),
            core: core_bps.map(|bps| LinkShare::new(bps, None)),
            ports: RefCell::new(Vec::new()),
            hosts: RefCell::new(Vec::new()),
            host_index: RefCell::new(HashMap::new()),
        })
    }

    /// Adds a server port (edge link + private TCP bottleneck) and
    /// returns its index. On a cored fabric the core's contender count
    /// follows the port count: with M servers attached, each port's
    /// traffic competes for `core / M`.
    pub fn add_port(&self) -> usize {
        let mut ports = self.ports.borrow_mut();
        let share = LinkShare::new(self.base.get().bandwidth_bps, self.core.clone());
        ports.push(Port {
            share,
            tcp_link: TcpLink::new(),
        });
        if let Some(core) = &self.core {
            core.set_active(ports.len() as u32);
        }
        ports.len() - 1
    }

    /// Number of server ports.
    pub fn port_count(&self) -> usize {
        self.ports.borrow().len()
    }

    /// The shared core link, when this fabric has one.
    pub fn core(&self) -> Option<&Rc<LinkShare>> {
        self.core.as_ref()
    }

    /// Port `port`'s TCP bottleneck queue pair (port 0's is the whole
    /// fabric's on the historical single-port shape; idle unless the
    /// TCP transport model is selected).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn tcp_link_of(&self, port: usize) -> Rc<TcpLink> {
        Rc::clone(&self.ports.borrow()[port].tcp_link)
    }

    /// The shared simulation context.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// The uncontended edge-link parameters (what one host sees when
    /// it has a server port to itself and the core is not binding).
    pub fn base_params(&self) -> LinkParams {
        self.base.get()
    }

    /// Port 0's contention state (the whole fabric's on the historical
    /// single-port shape).
    ///
    /// # Panics
    ///
    /// Panics if the fabric has no ports yet.
    pub fn share(&self) -> Rc<LinkShare> {
        Rc::clone(&self.ports.borrow()[0].share)
    }

    /// Marks `n` hosts as actively contending on port 0 — the
    /// historical single-port knob.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the fabric has no ports.
    pub fn set_active(&self, n: u32) {
        self.set_port_active(0, n);
    }

    /// Marks `n` hosts as actively contending for port `port`'s edge
    /// link.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `port` is out of range.
    pub fn set_port_active(&self, port: usize, n: u32) {
        self.ports.borrow()[port].share.set_active(n);
    }

    /// Returns the endpoint for `name` on port 0, creating it on first
    /// use — the historical single-server entry point.
    pub fn host(self: &Rc<Self>, name: &str) -> Rc<Network> {
        self.host_on(name, 0)
    }

    /// Returns the endpoint for `name` attached to server port `port`,
    /// creating it on first use. The endpoint starts with the fabric's
    /// current base parameters and shares the port's edge bandwidth
    /// (and, through it, the core) with the port's other hosts.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of bounds, or if `name` already exists
    /// on a different port.
    pub fn host_on(self: &Rc<Self>, name: &str, port: usize) -> Rc<Network> {
        self.endpoint(self.endpoint_id_on(name, port))
    }

    /// The stable handle for `name` on port 0, interning the endpoint
    /// on first use.
    pub fn endpoint_id(self: &Rc<Self>, name: &str) -> EndpointId {
        self.endpoint_id_on(name, 0)
    }

    /// The stable handle for `name` on `port`, creating the endpoint
    /// on first use. Handle resolution ([`Fabric::endpoint`]) is a
    /// `Vec` index — the per-access cost the old linear name scan paid
    /// N times over.
    ///
    /// # Panics
    ///
    /// See [`Fabric::host_on`].
    pub fn endpoint_id_on(self: &Rc<Self>, name: &str, port: usize) -> EndpointId {
        if let Some(&i) = self.host_index.borrow().get(name) {
            let existing = self.hosts.borrow()[i as usize].1;
            assert_eq!(
                existing as usize, port,
                "host {name} already attached to port {existing}"
            );
            return EndpointId(i);
        }
        let share = Rc::clone(&self.ports.borrow()[port].share);
        let tcp_link = self.tcp_link_of(port);
        let net = Network::endpoint(
            Rc::clone(&self.sim),
            self.base.get(),
            name.to_string(),
            share,
            tcp_link,
        );
        let mut hosts = self.hosts.borrow_mut();
        let id = hosts.len() as u32;
        hosts.push((name.to_string(), port as u32, net));
        self.host_index.borrow_mut().insert(name.to_string(), id);
        EndpointId(id)
    }

    /// Resolves a handle to its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this fabric.
    pub fn endpoint(&self, id: EndpointId) -> Rc<Network> {
        Rc::clone(&self.hosts.borrow()[id.index()].2)
    }

    /// The server port host `id` is attached to.
    pub fn port_of(&self, id: EndpointId) -> usize {
        self.hosts.borrow()[id.index()].1 as usize
    }

    /// The host names, in creation order.
    pub fn hosts(&self) -> Vec<String> {
        self.hosts
            .borrow()
            .iter()
            .map(|(n, _, _)| n.clone())
            .collect()
    }

    /// Reconfigures the round-trip time on every endpoint, present and
    /// future (the NISTNet knob, fabric-wide).
    pub fn set_rtt(&self, rtt: SimDuration) {
        let mut base = self.base.get();
        base.rtt = rtt;
        self.base.set(base);
        for (_, _, net) in self.hosts.borrow().iter() {
            net.set_rtt(rtt);
        }
    }

    /// Reconfigures every edge link's base bandwidth (cached shares
    /// recompute; endpoints created later inherit it).
    pub fn set_edge_bandwidth(&self, bps: Bps) {
        let mut base = self.base.get();
        base.bandwidth_bps = bps;
        self.base.set(base);
        for port in self.ports.borrow().iter() {
            port.share.set_base_bps(bps);
        }
    }

    /// Attaches one passive monitor to every existing endpoint.
    pub fn attach_sniffer(&self, s: Option<Rc<Sniffer>>) {
        for (_, _, net) in self.hosts.borrow().iter() {
            net.attach_sniffer(s.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transport;
    use simkit::Bytes;

    fn b(n: u64) -> Bytes {
        Bytes::new(n)
    }

    fn setup() -> (Rc<Sim>, Rc<Fabric>) {
        let sim = Sim::new(11);
        let fabric = Fabric::new(sim.clone(), LinkParams::gigabit_lan());
        (sim, fabric)
    }

    #[test]
    fn host_endpoints_are_memoized() {
        let (_sim, fabric) = setup();
        let a = fabric.host("c0");
        let b = fabric.host("c0");
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(fabric.hosts(), vec!["c0".to_string()]);
        assert_eq!(a.host(), Some("c0"));
    }

    #[test]
    fn endpoint_handles_resolve_without_name_lookups() {
        let (_sim, fabric) = setup();
        let id0 = fabric.endpoint_id("c0");
        let id1 = fabric.endpoint_id("c1");
        assert_ne!(id0, id1);
        assert_eq!(id0.index(), 0);
        assert_eq!(fabric.endpoint_id("c0"), id0, "handles are stable");
        assert!(Rc::ptr_eq(&fabric.endpoint(id0), &fabric.host("c0")));
        assert!(Rc::ptr_eq(&fabric.endpoint(id1), &fabric.host("c1")));
    }

    #[test]
    fn per_host_counters_layer_over_totals() {
        let (sim, fabric) = setup();
        let a = fabric.host("c0").channel("nfs", Transport::Tcp);
        let ch = fabric.host("c1").channel("nfs", Transport::Tcp);
        a.round_trip(b(100), b(100));
        ch.round_trip(b(100), b(100));
        ch.round_trip(b(100), b(100));
        let c = sim.counters();
        assert_eq!(c.get("net.c0.nfs.msgs"), 2);
        assert_eq!(c.get("net.c1.nfs.msgs"), 4);
        assert_eq!(c.get("net.nfs.msgs"), 6, "per-label total spans hosts");
        assert_eq!(c.get("net.total.msgs"), 6);
        assert_eq!(
            c.get("net.c0.nfs.bytes") + c.get("net.c1.nfs.bytes"),
            c.get("net.nfs.bytes"),
            "host byte counters partition the label total"
        );
    }

    #[test]
    fn extra_bytes_land_in_host_namespace() {
        let (sim, fabric) = setup();
        let ch = fabric.host("c3").channel("iscsi", Transport::Tcp);
        ch.account_extra_bytes(b(4096));
        assert_eq!(sim.counters().get("net.c3.iscsi.bytes"), 4096);
        assert_eq!(sim.counters().get("net.iscsi.bytes"), 4096);
        assert_eq!(sim.counters().get("net.c3.iscsi.msgs"), 0);
    }

    #[test]
    fn active_hosts_split_the_server_bandwidth() {
        let (_sim, fabric) = setup();
        let base = fabric.base_params();
        let one = fabric.host("c0");
        assert_eq!(one.params().bandwidth_bps, base.bandwidth_bps);
        fabric.set_active(4);
        assert_eq!(one.params().bandwidth_bps, base.bandwidth_bps / 4);
        // Serialization time scales inversely with the share.
        assert_eq!(
            one.params().serialize(b(4096)).as_nanos(),
            base.serialize(b(4096)).as_nanos() * 4
        );
        fabric.set_active(1);
        assert_eq!(one.params().bandwidth_bps, base.bandwidth_bps);
    }

    #[test]
    fn degenerate_single_host_matches_point_to_point_timing() {
        let sim = Sim::new(5);
        let plain = Network::new(sim.clone(), LinkParams::gigabit_lan());
        let pc = plain.channel("x", Transport::Tcp);
        let (sim2, fabric) = setup();
        let fc = fabric.host("c0").channel("x", Transport::Tcp);
        assert_eq!(
            pc.round_trip(b(1000), b(200)),
            fc.round_trip(b(1000), b(200))
        );
        assert_eq!(pc.stream(b(65_536), 16), fc.stream(b(65_536), 16));
        drop((sim, sim2));
    }

    #[test]
    fn rtt_fan_out_reaches_existing_and_future_hosts() {
        let (_sim, fabric) = setup();
        let early = fabric.host("c0");
        fabric.set_rtt(SimDuration::from_millis(30));
        let late = fabric.host("c1");
        assert_eq!(early.params().rtt, SimDuration::from_millis(30));
        assert_eq!(late.params().rtt, SimDuration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn fabric_rejects_invalid_loss() {
        let sim = Sim::new(1);
        let _ = Fabric::new(
            sim,
            LinkParams {
                loss: -0.1,
                ..LinkParams::gigabit_lan()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one active host")]
    fn zero_active_hosts_is_rejected() {
        let (_sim, fabric) = setup();
        fabric.set_active(0);
    }

    #[test]
    fn cored_fabric_caps_edges_by_the_core_share() {
        let sim = Sim::new(3);
        let edge = LinkParams::gigabit_lan(); // 1 Gb/s edges
        let fabric = Fabric::with_core(sim, edge, Bps::new(2_000_000_000)); // 2 Gb/s core
        let p0 = fabric.add_port();
        let p1 = fabric.add_port();
        let a = fabric.host_on("c0", p0);
        let b = fabric.host_on("c1", p1);
        // Two ports on a 2 Gb/s core: each gets 1 Gb/s — edge-bound.
        assert_eq!(a.params().bandwidth_bps, Bps::new(1_000_000_000));
        // A third port drops the core share to 666 Mb/s < edge: the
        // core now binds every endpoint, idle edges included.
        fabric.add_port();
        assert_eq!(a.params().bandwidth_bps, Bps::new(2_000_000_000 / 3));
        assert_eq!(b.params().bandwidth_bps, Bps::new(2_000_000_000 / 3));
    }

    #[test]
    fn edge_contention_is_per_port() {
        let sim = Sim::new(3);
        // Core wide enough (8 Gb/s) to never bind two ports.
        let fabric = Fabric::with_core(sim, LinkParams::gigabit_lan(), Bps::new(8_000_000_000));
        let p0 = fabric.add_port();
        let p1 = fabric.add_port();
        let a = fabric.host_on("c0", p0);
        let b = fabric.host_on("c1", p1);
        fabric.set_port_active(p0, 4);
        assert_eq!(
            a.params().bandwidth_bps,
            Bps::new(1_000_000_000 / 4),
            "port 0's hosts split its edge"
        );
        assert_eq!(
            b.params().bandwidth_bps,
            Bps::new(1_000_000_000),
            "port 1 is unaffected by port 0's load"
        );
    }

    #[test]
    fn ports_have_private_tcp_bottlenecks() {
        let sim = Sim::new(3);
        let fabric = Fabric::with_core(sim, LinkParams::gigabit_lan(), Bps::new(8_000_000_000));
        let p0 = fabric.add_port();
        let p1 = fabric.add_port();
        assert!(!Rc::ptr_eq(
            &fabric.tcp_link_of(p0),
            &fabric.tcp_link_of(p1)
        ));
        // Hosts on the same port share its queues.
        let a = fabric.host_on("c0", p0);
        assert!(Rc::ptr_eq(a.tcp_link(), &fabric.tcp_link_of(p0)));
    }

    #[test]
    fn share_cache_matches_direct_division() {
        let s = LinkShare::new(Bps::new(1_000_000_007), None);
        for n in 1..=13u32 {
            s.set_active(n);
            assert_eq!(s.effective_bps(), Bps::new(1_000_000_007 / n as u64));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn host_on_unknown_port_is_rejected() {
        let sim = Sim::new(3);
        let fabric = Fabric::with_core(sim, LinkParams::gigabit_lan(), Bps::new(1_000_000_000));
        let _ = fabric.host_on("c0", 2);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn rehoming_a_host_to_another_port_is_rejected() {
        let sim = Sim::new(3);
        let fabric = Fabric::with_core(sim, LinkParams::gigabit_lan(), Bps::new(1_000_000_000));
        let p0 = fabric.add_port();
        let p1 = fabric.add_port();
        let _ = fabric.host_on("c0", p0);
        let _ = fabric.host_on("c0", p1);
    }
}
