//! Simulated IP network for the `ipstorage` testbed.
//!
//! The paper's testbed is a single client and a single server on an
//! isolated Gigabit Ethernet LAN, optionally with NISTNet-injected
//! wide-area delay (§4.6). This crate models that link: a full-duplex
//! [`Network`] with configurable round-trip time, bandwidth, and an
//! optional loss rate, plus [`Channel`]s that protocols open over it.
//!
//! Channels do the accounting that every message-count column in the
//! paper's tables is built from: each send bumps `net.<label>.msgs`
//! and `net.<label>.bytes` counters on the shared [`Sim`].
//!
//! Like block devices, the network never advances the clock itself:
//! sends and round trips return the [`SimDuration`] they would take,
//! and the caller decides whether that time is foreground latency or
//! overlapped background transfer.
//!
//! # Example
//!
//! ```
//! use simkit::{Bytes, Sim, SimDuration};
//! use net::{LinkParams, Network, Transport};
//!
//! let sim = Sim::new(1);
//! let netw = Network::new(sim.clone(), LinkParams::gigabit_lan());
//! let ch = netw.channel("rpc", Transport::Tcp);
//! let rt = ch.round_trip(Bytes::new(128), Bytes::new(128));
//! sim.advance(rt);
//! assert_eq!(sim.counters().get("net.rpc.msgs"), 2);
//! ```

pub mod fabric;
pub mod sniffer;
pub mod tcp;

pub use fabric::{EndpointId, Fabric, LinkShare};
pub use sniffer::{PacketRecord, SegKind, Sniffer};
pub use tcp::{Direction, TcpEndpoint, TcpLink, Transfer, TransportModel};

use simkit::units::{self, Bps, Bytes};
use simkit::{Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Transport used by a channel. The distinction matters for the RPC
/// layer (NFS v2 runs over UDP, v3/v4 and iSCSI over TCP) and for the
/// per-message header overhead added to the byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Datagram transport (no delivery guarantee; the RPC layer
    /// retransmits).
    Udp,
    /// Stream transport (reliable and ordered; retransmission below
    /// the RPC layer is invisible except as added latency).
    Tcp,
}

impl Transport {
    /// Ethernet + IP + transport header bytes added to each message.
    pub fn header_bytes(self) -> Bytes {
        match self {
            Transport::Udp => Bytes::new(14 + 20 + 8),
            Transport::Tcp => Bytes::new(14 + 20 + 32), // options-bearing TCP header
        }
    }
}

/// Physical parameters of the simulated link.
#[derive(Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Round-trip time (propagation only, both directions).
    pub rtt: SimDuration,
    /// Link bandwidth in bits per second, each direction.
    pub bandwidth_bps: Bps,
    /// Probability in `[0, 1)` that a message is lost (UDP only; TCP
    /// masks loss as latency). Zero on the paper's isolated LAN.
    pub loss: f64,
    /// How transfer timing is modeled: the default closed-form pipe,
    /// or event-scheduled TCP flows with congestion ([`tcp`]).
    pub transport: TransportModel,
}

/// Hand-rolled so the rendering is byte-identical to the pre-TCP
/// derived output whenever the default pipe model is selected. The
/// snapshot cache's `SetupKey` embeds `{:?}` of the testbed config —
/// which contains this struct — and seeds every setup RNG from a hash
/// of that string, so a new field appearing unconditionally would
/// silently reseed (and break) every golden. The `transport` field is
/// printed only when it deviates from the default.
impl fmt::Debug for LinkParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("LinkParams");
        s.field("rtt", &self.rtt)
            .field("bandwidth_bps", &self.bandwidth_bps)
            .field("loss", &self.loss);
        if self.transport != TransportModel::Pipe {
            s.field("transport", &self.transport);
        }
        s.finish()
    }
}

impl LinkParams {
    /// The paper's isolated Gigabit Ethernet LAN: sub-millisecond RTT
    /// (we use 200 µs), 1 Gb/s, no loss.
    pub fn gigabit_lan() -> Self {
        LinkParams {
            rtt: SimDuration::from_micros(200),
            bandwidth_bps: Bps::new(1_000_000_000),
            loss: 0.0,
            transport: TransportModel::Pipe,
        }
    }

    /// A wide-area emulation in the style of the paper's NISTNet
    /// setup: the given RTT at Gigabit bandwidth.
    pub fn wan(rtt: SimDuration) -> Self {
        LinkParams {
            rtt,
            bandwidth_bps: Bps::new(1_000_000_000),
            loss: 0.0,
            transport: TransportModel::Pipe,
        }
    }

    /// The same link under a different transport model (the opt-in
    /// switch for [`TransportModel::Tcp`]).
    pub fn with_transport(mut self, transport: TransportModel) -> Self {
        self.transport = transport;
        self
    }

    /// Checks the link invariants. `loss` must be a probability in
    /// `[0, 1)`; every constructor that accepts a hand-built
    /// `LinkParams` ([`Network::new`], [`Fabric::new`]) calls this so
    /// the invariant cannot be bypassed by building the struct
    /// directly instead of going through [`Network::set_loss`].
    ///
    /// # Panics
    ///
    /// Panics unless `loss` is in `[0, 1)`.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.loss),
            "loss must be in [0,1), got {}",
            self.loss
        );
    }

    /// Serialization (transmission) delay for `bytes` on this link
    /// (`u128`-widened — exact for any `u64` byte count, where the old
    /// `saturating_mul` formulation pinned transfers above ~2.3 GB).
    pub fn serialize(&self, bytes: Bytes) -> SimDuration {
        units::transfer_time(bytes, self.bandwidth_bps)
    }

    /// One-way latency for a message of `bytes`.
    pub fn one_way(&self, bytes: Bytes) -> SimDuration {
        self.rtt / 2 + self.serialize(bytes)
    }
}

/// The simulated client–server link.
///
/// Interior mutability lets experiments change the RTT mid-run, as the
/// paper does when sweeping NISTNet delays for Figure 6.
#[derive(Debug)]
pub struct Network {
    sim: Rc<Sim>,
    rtt: Cell<SimDuration>,
    bandwidth_bps: Cell<Bps>,
    loss: Cell<f64>,
    /// Host name when this endpoint belongs to a [`Fabric`]; channels
    /// then also account under `net.<host>.<label>.*`.
    host: Option<String>,
    /// Server-side link shared with the fabric's other endpoints;
    /// effective bandwidth is the base divided by the active count.
    share: Option<Rc<LinkShare>>,
    /// Transport model every channel on this link uses (fixed at
    /// construction; the NISTNet knobs above do not change it).
    transport: TransportModel,
    /// Bottleneck queue pair for the TCP model. On a fabric endpoint
    /// this is the *fabric's* shared link, so all hosts contend for
    /// the same server port queue; a point-to-point network owns its
    /// own. Always present (two idle cells) so channels can be opened
    /// before any transport decision matters.
    tcp_link: Rc<TcpLink>,
    /// Optional passive tap (the paper's Ethereal).
    sniffer: RefCell<Option<Rc<Sniffer>>>,
}

impl Network {
    /// Creates a link with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.loss` is outside `[0, 1)`.
    pub fn new(sim: Rc<Sim>, params: LinkParams) -> Rc<Self> {
        params.validate();
        Rc::new(Network {
            sim,
            rtt: Cell::new(params.rtt),
            bandwidth_bps: Cell::new(params.bandwidth_bps),
            loss: Cell::new(params.loss),
            host: None,
            share: None,
            transport: params.transport,
            tcp_link: TcpLink::new(),
            sniffer: RefCell::new(None),
        })
    }

    /// Creates a fabric endpoint: a link named `host` whose channels
    /// additionally account under `net.<host>.<label>.*` and whose
    /// effective bandwidth is `params.bandwidth_bps` divided by the
    /// number of active hosts on `share`.
    pub(crate) fn endpoint(
        sim: Rc<Sim>,
        params: LinkParams,
        host: String,
        share: Rc<LinkShare>,
        tcp_link: Rc<TcpLink>,
    ) -> Rc<Self> {
        params.validate();
        Rc::new(Network {
            sim,
            rtt: Cell::new(params.rtt),
            bandwidth_bps: Cell::new(params.bandwidth_bps),
            loss: Cell::new(params.loss),
            host: Some(host),
            share: Some(share),
            transport: params.transport,
            tcp_link,
            sniffer: RefCell::new(None),
        })
    }

    /// The host name, when this endpoint belongs to a [`Fabric`].
    pub fn host(&self) -> Option<&str> {
        self.host.as_deref()
    }

    /// Current link parameters. On a fabric endpoint the bandwidth is
    /// the contended share — the edge link's base bandwidth divided by
    /// its active-host count, capped by the core switch if the fabric
    /// has one. The share is cached on active-set changes
    /// ([`LinkShare::set_active`]), so this is a couple of `Cell` reads
    /// and the arithmetic is the same integer division the historical
    /// per-call `base / active` computed.
    pub fn params(&self) -> LinkParams {
        let bandwidth_bps = match &self.share {
            Some(s) => s.effective_bps(),
            None => self.bandwidth_bps.get(),
        };
        LinkParams {
            rtt: self.rtt.get(),
            bandwidth_bps,
            loss: self.loss.get(),
            transport: self.transport,
        }
    }

    /// The transport model channels on this link use.
    pub fn transport_model(&self) -> TransportModel {
        self.transport
    }

    /// The TCP bottleneck queue pair (shared fabric-wide on fabric
    /// endpoints). Idle unless the TCP model is selected.
    pub fn tcp_link(&self) -> &Rc<TcpLink> {
        &self.tcp_link
    }

    /// Reconfigures the round-trip time (the NISTNet knob).
    pub fn set_rtt(&self, rtt: SimDuration) {
        self.rtt.set(rtt);
    }

    /// Reconfigures the loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `loss` is in `[0, 1)`.
    pub fn set_loss(&self, loss: f64) {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        self.loss.set(loss);
    }

    /// The shared simulation context.
    pub fn sim(&self) -> &Rc<Sim> {
        &self.sim
    }

    /// Attaches a passive packet monitor; every subsequent message is
    /// recorded. Pass `None` to detach.
    pub fn attach_sniffer(&self, s: Option<Rc<Sniffer>>) {
        *self.sniffer.borrow_mut() = s;
    }

    /// Opens an accounting channel. The label appears in counter names
    /// (`net.<label>.msgs`, `net.<label>.bytes`).
    pub fn channel(self: &Rc<Self>, label: impl Into<String>, transport: Transport) -> Channel {
        self.channel_flows(label, transport, None)
    }

    /// Like [`Network::channel`], but with an explicit flow count for
    /// the TCP model: `flows` overrides the link-level connection
    /// count (the NFS `nconnect` mount option, which picks a flow
    /// count per mount rather than per link). `None` inherits the
    /// link's count; the override is ignored entirely under
    /// [`TransportModel::Pipe`].
    pub fn channel_flows(
        self: &Rc<Self>,
        label: impl Into<String>,
        transport: Transport,
        flows: Option<u32>,
    ) -> Channel {
        let label = label.into();
        let c = self.sim.counters();
        // Counter names are formatted once here; the per-message path
        // (`account`) only bumps the resolved handles.
        let msgs = c.handle(&format!("net.{label}.msgs"));
        let bytes = c.handle(&format!("net.{label}.bytes"));
        let total_msgs = c.handle("net.total.msgs");
        let total_bytes = c.handle("net.total.bytes");
        // Fabric endpoints additionally account per host, layered over
        // the per-label and grand totals. A plain point-to-point
        // `Network` registers no extra names, keeping single-client
        // reports byte-identical.
        let host = self.host.as_ref().map(|h| {
            (
                c.handle(&format!("net.{h}.{label}.msgs")),
                c.handle(&format!("net.{h}.{label}.bytes")),
            )
        });
        // Under the TCP model, stream-transport channels get their own
        // flow set over the shared bottleneck (UDP channels keep the
        // closed form: the flow machinery models TCP's window, which a
        // datagram transport does not have).
        let tcp = match (transport, self.transport) {
            (Transport::Tcp, TransportModel::Tcp { connections }) => Some(Rc::new(
                TcpEndpoint::new(Rc::clone(&self.tcp_link), flows.unwrap_or(connections)),
            )),
            _ => None,
        };
        Channel {
            net: Rc::clone(self),
            label,
            transport,
            msgs,
            bytes,
            total_msgs,
            total_bytes,
            host,
            tcp,
            retx: Default::default(),
        }
    }
}

/// One protocol's view of the link, with per-channel accounting.
#[derive(Debug, Clone)]
pub struct Channel {
    net: Rc<Network>,
    label: String,
    transport: Transport,
    msgs: simkit::CounterHandle,
    bytes: simkit::CounterHandle,
    total_msgs: simkit::CounterHandle,
    total_bytes: simkit::CounterHandle,
    /// `(msgs, bytes)` under `net.<host>.<label>.*` on fabric endpoints.
    host: Option<(simkit::CounterHandle, simkit::CounterHandle)>,
    /// Congestion-modeled flows when the link selects
    /// [`TransportModel::Tcp`] and this channel is stream transport.
    tcp: Option<Rc<TcpEndpoint>>,
    /// Lazily-interned `(net.tcp.retx_segs, net.<label>.retx_segs)`
    /// ids: retransmit counters must not exist until the first actual
    /// retransmit (reports list every created name), and once they do,
    /// per-transfer accounting must not re-format the key.
    retx: std::cell::RefCell<Option<(simkit::KeyId, simkit::KeyId)>>,
}

/// Outcome of an unreliable send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives after the given delay.
    Delivered(SimDuration),
    /// The message was lost in transit (UDP only).
    Lost,
}

impl Channel {
    /// The channel's transport.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The channel's accounting label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The network this channel runs over.
    pub fn network(&self) -> &Rc<Network> {
        &self.net
    }

    /// Adds raw wire bytes to the channel's byte counters without
    /// counting a message. Used by segmented transfers (iSCSI data
    /// PDUs) where the exchange is tallied as one transaction but
    /// every PDU's bytes must still appear in `net.*.bytes`.
    pub fn account_extra_bytes(&self, bytes: Bytes) {
        self.bytes.add(bytes.get());
        self.total_bytes.add(bytes.get());
        if let Some((_, host_bytes)) = &self.host {
            host_bytes.add(bytes.get());
        }
    }

    fn account(&self, payload: Bytes) {
        if let Some(s) = self.net.sniffer.borrow().as_ref() {
            s.observe(self.net.sim.now(), &self.label, payload);
        }
        let wire = payload + self.transport.header_bytes();
        self.msgs.incr();
        self.bytes.add(wire.get());
        self.total_msgs.incr();
        self.total_bytes.add(wire.get());
        if let Some((host_msgs, host_bytes)) = &self.host {
            host_msgs.incr();
            host_bytes.add(wire.get());
        }
    }

    /// Whether this channel's timing is modeled by TCP flows instead
    /// of the closed-form pipe.
    pub fn tcp_modeled(&self) -> bool {
        self.tcp.is_some()
    }

    /// The channel's flow set, when TCP-modeled.
    pub fn tcp_endpoint(&self) -> Option<&Rc<TcpEndpoint>> {
        self.tcp.as_ref()
    }

    /// Folds one modeled transfer's loss-recovery traffic into the
    /// books: retransmitted wire bytes join the byte counters (they
    /// crossed the link), and the sniffer tags the segments with
    /// their [`SegKind`] so a capture can separate goodput from
    /// recovery.
    fn tcp_account(&self, t: &tcp::Transfer) {
        if t.retrans_segments > 0 {
            self.account_extra_bytes(t.retrans_bytes);
            let c = self.net.sim.counters();
            let (total, per_label) = *self.retx.borrow_mut().get_or_insert_with(|| {
                (
                    c.id("net.tcp.retx_segs"),
                    c.id(&format!("net.{}.retx_segs", self.label)),
                )
            });
            c.add_id(total, t.retrans_segments);
            c.add_id(per_label, t.retrans_segments);
        }
        if t.dup_acks > 0 {
            self.net.sim.counters().add("net.tcp.dup_acks", t.dup_acks);
        }
        if let Some(s) = self.net.sniffer.borrow().as_ref() {
            let now = self.net.sim.now();
            for _ in 0..t.retrans_segments {
                s.observe_kind(now, &self.label, Bytes::new(tcp::MSS), SegKind::Retransmit);
            }
            for _ in 0..t.dup_acks {
                s.observe_kind(now, &self.label, Bytes::ZERO, SegKind::DupAck);
            }
        }
    }

    /// Models one leg on a specific flow and books its recovery
    /// traffic.
    fn tcp_leg(
        &self,
        ep: &TcpEndpoint,
        at: simkit::SimTime,
        payload: Bytes,
        dir: Direction,
        flow: usize,
    ) -> SimDuration {
        let t = ep.transfer_on(&self.net.params(), at, payload, dir, flow);
        self.tcp_account(&t);
        t.duration
    }

    /// Models `bytes` striped across every connection of the channel
    /// (iSCSI MC/S data phases). Returns `None` on pipe-modeled
    /// channels, whose callers keep the closed form.
    pub fn tcp_burst(&self, bytes: Bytes, dir: Direction) -> Option<SimDuration> {
        let ep = self.tcp.as_ref()?;
        let t = ep.transfer_striped(&self.net.params(), self.net.sim.now(), bytes, dir);
        self.tcp_account(&t);
        Some(t.duration)
    }

    /// Sends one message of `payload` bytes; returns its fate. TCP
    /// never reports `Lost` (under the pipe model loss below the
    /// transport folds into serialization; under the flow model it is
    /// retransmitted for real and shows up as latency).
    pub fn send(&self, payload: Bytes) -> Delivery {
        self.account(payload);
        if let Some(ep) = &self.tcp {
            let flow = ep.next_flow();
            let d = self.tcp_leg(ep, self.net.sim.now(), payload, Direction::Up, flow);
            return Delivery::Delivered(d);
        }
        let p = self.net.params();
        if self.transport == Transport::Udp && p.loss > 0.0 {
            let draw = units::unit_interval(self.net.sim.rng_u64());
            if draw < p.loss {
                return Delivery::Lost;
            }
        }
        Delivery::Delivered(p.one_way(payload + self.transport.header_bytes()))
    }

    /// A request-response exchange: two messages, both delivered
    /// (callers needing loss semantics use [`send`](Channel::send)
    /// twice). Returns the total elapsed time. Under the TCP model
    /// both legs ride the same connection (per-connection allegiance);
    /// successive exchanges rotate round-robin across the channel's
    /// connections, which is exactly nconnect's dispatch rule.
    pub fn round_trip(&self, request: Bytes, response: Bytes) -> SimDuration {
        self.account(request);
        self.account(response);
        if let Some(ep) = &self.tcp {
            let flow = ep.next_flow();
            let now = self.net.sim.now();
            let d1 = self.tcp_leg(ep, now, request, Direction::Up, flow);
            let d2 = self.tcp_leg(ep, now + d1, response, Direction::Down, flow);
            return d1 + d2;
        }
        let p = self.net.params();
        p.one_way(request + self.transport.header_bytes())
            + p.one_way(response + self.transport.header_bytes())
    }

    /// Time to stream `bytes` in `nmsgs` back-to-back messages after
    /// an initial half-RTT (used for multi-segment data transfers
    /// where only the first segment pays propagation). Under the TCP
    /// model the message framing still drives the byte accounting, but
    /// the timing comes from striping the payload across the channel's
    /// connections.
    pub fn stream(&self, bytes: Bytes, nmsgs: u64) -> SimDuration {
        let p = self.net.params();
        // Even segments, with the division remainder carried by the
        // final one so `net.*.bytes` accounts every byte of transfers
        // that don't divide evenly.
        let base = bytes / nmsgs.max(1);
        for i in 0..nmsgs {
            let tail = if i + 1 == nmsgs {
                bytes - base * nmsgs
            } else {
                Bytes::ZERO
            };
            self.account(base + tail);
        }
        if nmsgs > 0 {
            if let Some(d) = self.tcp_burst(bytes, Direction::Up) {
                return d;
            }
        }
        p.rtt / 2 + p.serialize(bytes + self.transport.header_bytes() * nmsgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> Bytes {
        Bytes::new(n)
    }

    fn setup() -> (Rc<Sim>, Rc<Network>) {
        let sim = Sim::new(7);
        let net = Network::new(sim.clone(), LinkParams::gigabit_lan());
        (sim, net)
    }

    #[test]
    fn serialization_delay_scales() {
        let p = LinkParams::gigabit_lan();
        // 1 Gb/s → 125 MB/s → 4096 B ≈ 32.768 µs
        assert_eq!(p.serialize(b(4096)).as_nanos(), 32_768);
        assert_eq!(p.serialize(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn round_trip_counts_two_messages() {
        let (sim, net) = setup();
        let ch = net.channel("rpc", Transport::Tcp);
        let d = ch.round_trip(b(100), b(200));
        assert!(d >= sim.now().since(simkit::SimTime::ZERO)); // positive
        assert_eq!(sim.counters().get("net.rpc.msgs"), 2);
        let hdr = Transport::Tcp.header_bytes().get();
        assert_eq!(sim.counters().get("net.rpc.bytes"), 300 + 2 * hdr);
        assert_eq!(sim.counters().get("net.total.msgs"), 2);
    }

    #[test]
    fn rtt_reconfiguration_takes_effect() {
        let (_sim, net) = setup();
        let ch = net.channel("x", Transport::Tcp);
        let fast = ch.round_trip(Bytes::ZERO, Bytes::ZERO);
        net.set_rtt(SimDuration::from_millis(90));
        let slow = ch.round_trip(Bytes::ZERO, Bytes::ZERO);
        assert!(slow > fast);
        assert!(slow >= SimDuration::from_millis(90));
    }

    #[test]
    fn udp_loses_messages_at_configured_rate() {
        let (_sim, net) = setup();
        net.set_loss(0.5);
        let ch = net.channel("u", Transport::Udp);
        let mut lost = 0;
        let n = 2000;
        for _ in 0..n {
            if ch.send(b(64)) == Delivery::Lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((0.4..0.6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn tcp_never_reports_loss() {
        let (_sim, net) = setup();
        net.set_loss(0.9);
        let ch = net.channel("t", Transport::Tcp);
        for _ in 0..100 {
            assert!(matches!(ch.send(b(64)), Delivery::Delivered(_)));
        }
    }

    #[test]
    fn stream_pays_one_propagation() {
        let (_sim, net) = setup();
        let ch = net.channel("s", Transport::Tcp);
        let p = net.params();
        let d = ch.stream(b(1_000_000), 8);
        let expected = p.rtt / 2 + p.serialize(b(1_000_000) + Transport::Tcp.header_bytes() * 8);
        assert_eq!(d, expected);
    }

    #[test]
    fn stream_accounts_every_byte_of_uneven_transfers() {
        let (sim, net) = setup();
        let ch = net.channel("s", Transport::Tcp);
        // 1003 / 4 = 250 rem 3: the final segment must carry the
        // remainder instead of dropping it.
        ch.stream(b(1003), 4);
        let hdr = Transport::Tcp.header_bytes().get();
        assert_eq!(sim.counters().get("net.s.msgs"), 4);
        assert_eq!(sim.counters().get("net.s.bytes"), 1003 + 4 * hdr);
        assert_eq!(sim.counters().get("net.total.bytes"), 1003 + 4 * hdr);
    }

    #[test]
    fn stream_with_zero_messages_accounts_nothing() {
        let (sim, net) = setup();
        let ch = net.channel("z", Transport::Tcp);
        ch.stream(b(512), 0);
        assert_eq!(sim.counters().get("net.z.msgs"), 0);
        assert_eq!(sim.counters().get("net.z.bytes"), 0);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn hand_built_loss_is_rejected_at_construction() {
        let sim = Sim::new(7);
        let params = LinkParams {
            loss: 1.5,
            ..LinkParams::gigabit_lan()
        };
        let _ = Network::new(sim, params);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn loss_of_exactly_one_is_rejected() {
        LinkParams {
            loss: 1.0,
            ..LinkParams::gigabit_lan()
        }
        .validate();
    }

    #[test]
    fn separate_channels_account_separately() {
        let (sim, net) = setup();
        let a = net.channel("a", Transport::Tcp);
        let b = net.channel("b", Transport::Udp);
        a.send(Bytes::new(10));
        b.send(Bytes::new(10));
        b.send(Bytes::new(10));
        assert_eq!(sim.counters().get("net.a.msgs"), 1);
        assert_eq!(sim.counters().get("net.b.msgs"), 2);
        assert_eq!(sim.counters().get("net.total.msgs"), 3);
    }
}
