//! `ipstorage` — a simulation testbed reproducing *A Performance
//! Comparison of NFS and iSCSI for IP-Networked Storage* (FAST 2004).
//!
//! This umbrella crate re-exports every subsystem of the workspace so
//! examples and downstream users can depend on a single crate:
//!
//! * [`simkit`] — deterministic clock, daemons, RNG, counters
//! * [`blockdev`] — disks, mechanical timing model, RAID-5
//! * [`net`] — simulated LAN with configurable RTT and accounting
//! * [`rpc`] — ONC-RPC-like transport used by NFS
//! * [`scsi`] — SCSI command set used by iSCSI
//! * [`iscsi`] — iSCSI initiator/target exposing a remote block device
//! * [`ext3`] — journaling file system with buffer cache and write-back
//! * [`nfs`] — NFS v2/v3/v4 client and server, plus §7 enhancements
//! * [`vfs`] — the unified system-call interface used by workloads
//! * [`cpu`] — processing-path cost model and utilization sampling
//! * [`workloads`] — PostMark, OLTP/DSS emulations, shell workloads
//! * [`traces`] — Harvard-like trace synthesis and sharing analysis
//! * `core` ([`ipstorage_core`]) — the testbed builder and one runner per
//!   paper table/figure
//!
//! # Quickstart
//!
//! ```
//! use ipstorage::core::{Testbed, Protocol};
//!
//! // Build the paper's testbed and run one operation over each protocol.
//! let nfs = Testbed::with_protocol(Protocol::NfsV3);
//! let iscsi = Testbed::with_protocol(Protocol::Iscsi);
//! nfs.fs().mkdir("/a").unwrap();
//! iscsi.fs().mkdir("/a").unwrap();
//! iscsi.settle(); // asynchronous meta-data reaches the wire later
//! assert!(nfs.messages() > 0 && iscsi.messages() > 0);
//! ```

pub use blockdev;
pub use cpu;
pub use ext3;
pub use ipstorage_core as core;
pub use iscsi;
pub use net;
pub use nfs;
pub use rpc;
pub use scsi;
pub use simkit;
pub use traces;
pub use vfs;
pub use workloads;
